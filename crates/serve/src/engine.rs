//! The serving engine: a virtual-time loop joining admission, batched
//! prefill/decode, sampling, and eviction.
//!
//! One engine *step* is one batched model invocation. A decoding
//! sequence advances by exactly one token per step; a *prefilling*
//! sequence consumes up to [`EngineConfig::prefill_chunk`] prompt
//! tokens per step. Chunking bounds how much of a step's work any one
//! prompt can claim, so a long prompt is spread across several steps
//! interleaved with its batch-mates' decode — it can never stall
//! already-running sequences for its whole prefill, yet still finishes
//! `chunk×` faster than the one-token-per-step loop. The recurrence
//! makes token-level prefill exact (no attention window to re-scan), so
//! any chunk size yields bit-identical outputs.
//!
//! Admission is policy-driven ([`crate::scheduler::Policy`]): each step
//! the policy sees the entire waiting queue and selects *which*
//! requests join, not merely how many — FIFO, earliest-deadline-first,
//! strict priority classes, or weighted fair queueing across models.
//! Deadline-aware policies additionally ask the engine to evict doomed
//! requests (deadline provably unmeetable) before admission, so a
//! guaranteed miss never burns a slot or a batched step.
//!
//! Residency is *preemptible*: a policy may pause resident sequences
//! ([`crate::scheduler::Policy::preempt`]) to hand their slots to more
//! urgent work. Because Mamba2's per-sequence state is fixed-size, a
//! pause is one state snapshot ([`crate::backend::PausedState`]) — no
//! KV cache to spill — and a later resume restores it bit-identically,
//! so preemption changes *when* a request runs, never *what* it
//! generates (pinned by the pause/resume equivalence proptests). Paused
//! sequences wait in a side queue, compete for slots through the same
//! policy admission as fresh arrivals, and still honor their deadlines
//! (expiry and doomed eviction apply while paused, judged on the work
//! they still owe). Pause/resume traffic is priced by the cost models
//! as state-transfer bytes on the shared stream.
//!
//! The engine is generic over execution backends: it drives a
//! [`ModelRegistry`] of named [`crate::backend::DecodeBackend`]s sharing
//! one slot pool, forming one sub-batch per model per step (each
//! sub-batch is one shared weight stream on the accelerator, so the cost
//! model prices them independently). A single-model engine is the
//! one-entry special case ([`ServeEngine::new`]).
//!
//! Sampling is per-request deterministic (each request carries its own
//! seeded RNG), so a request's output tokens are independent of the
//! admission policy, prefill chunking, batch composition, and which
//! other models are multiplexed — the engine's equivalence tests pin
//! batched-vs-sequential outputs bit-for-bit.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use lightmamba_model::MambaModel;
use lightmamba_obs::recorder::{FaultKind, LifecyclePhase, StepRecord};
use lightmamba_pool::WorkerPool;

use crate::backend::PausedState;
use crate::error::ServeError;
use crate::metrics::{ClassBreakdown, ModelBreakdown, Percentiles, RunTrace, ServeReport};
use crate::observe::{EngineObs, ObsConfig};
use crate::prefix::PrefixCache;
use crate::registry::ModelRegistry;
use crate::request::{Completion, FinishReason, GenRequest, Priority, RequestId};
use crate::resilience::{BackendHealth, DegradationController, HealthTracker, ResilienceConfig};
use crate::scheduler::{AdmissionCtx, Policy, SeqView, TokenBudget};
use crate::slots::SlotPool;

/// Human-readable description of a caught panic payload (`panic!` with
/// a literal yields `&str`, with a format string yields `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The continuation record of a finished session turn: the final
/// fixed-size recurrent state plus the one token that was sampled but
/// never fed back through the model. The engine saves one at retirement
/// for every session-tagged request ([`GenRequest::session`]; drain via
/// [`ServeEngine::take_session_snapshots`]) and
/// [`ServeEngine::submit_with_state`] consumes one to serve the
/// session's next turn — a single state-transfer DMA instead of
/// re-prefilling the whole conversation, the serving payoff of Mamba's
/// constant-size state.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The final decode state, having consumed the turn's prompt plus
    /// all generated tokens except the last.
    pub state: PausedState,
    /// The turn's final sampled token. It was never fed through the
    /// model (sampling it retired the sequence), so the resume prepends
    /// it to the next turn's prompt — that is what makes the resumed
    /// decode bit-identical to re-prefilling the full history.
    pub pending_token: u32,
    /// Token-advances baked into the state (prompt plus generated minus
    /// the pending token) — the re-prefill work a resume avoids.
    pub consumed_tokens: usize,
}

/// One live notification recorded during a step when event recording is
/// on ([`ServeEngine::enable_events`]) — the feed the streaming
/// frontend fans out to per-request channels. Requests *leaving* the
/// engine are not events: every eviction path already records a
/// [`Completion`], so readers watch [`ServeEngine::completions`] grow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// The request was admitted to a slot (its prefill starts this
    /// step). Emitted once per request — a preemption resume is not a
    /// new start.
    Started {
        /// The admitted request.
        id: RequestId,
        /// Admission step.
        step: u64,
    },
    /// The request sampled one token this step.
    Token {
        /// The sampling request.
        id: RequestId,
        /// The sampled token id.
        token: u32,
        /// The sampling step.
        step: u64,
    },
}

/// One resident sequence.
#[derive(Debug)]
struct ActiveSeq {
    req: GenRequest,
    slot: usize,
    /// Prompt tokens consumed so far; decode starts at `prompt.len()`.
    pos: usize,
    generated: Vec<u32>,
    rng: StdRng,
    admitted_step: u64,
    first_token_step: Option<u64>,
    /// Times this sequence has been paused out of its slot.
    preemptions: u32,
    /// Steps spent paused across all completed episodes.
    paused_steps: u64,
    /// The subset of `paused_steps` accrued before the first token
    /// (excluded from TTFT).
    paused_steps_pre_first: u64,
    /// `Some(k)`: the first `k` prompt tokens are a shared prefix the
    /// prefix cache missed on — snapshot the state when `pos` reaches
    /// `k` (see [`ServeEngine::step`] phase 8b), then clear. Feeding
    /// clips at `k` so the snapshot summarizes exactly the prefix.
    harvest: Option<usize>,
}

/// One preempted sequence: its fixed-size saved state plus every piece
/// of generation progress needed to resume bit-identically — prompt
/// position, sampled tokens, and the request's private RNG (moved, not
/// reseeded, so the sampling stream continues exactly where it paused).
#[derive(Debug)]
struct PausedSeq {
    req: GenRequest,
    state: PausedState,
    pos: usize,
    generated: Vec<u32>,
    rng: StdRng,
    admitted_step: u64,
    first_token_step: Option<u64>,
    /// Step at which this pause episode began.
    paused_at: u64,
    preemptions: u32,
    paused_steps: u64,
    paused_steps_pre_first: u64,
    /// Pending prefix-harvest marker, carried across the pause (see
    /// [`ActiveSeq::harvest`]).
    harvest: Option<usize>,
}

impl PausedSeq {
    /// Scheduling view with progress-aware remaining work.
    fn view(&self, prefill_chunk: usize) -> SeqView {
        SeqView::new(
            &self.req,
            self.req
                .min_steps_remaining(self.pos, self.generated.len(), prefill_chunk),
        )
    }

    /// Ends the current pause episode at `clock`: the episode length
    /// plus the updated `(paused_steps, paused_steps_pre_first)`
    /// totals. The pre-first-token split is the TTFT-exclusion rule —
    /// one place, shared by resume and by eviction-while-paused.
    fn end_episode(&self, clock: u64) -> (u64, u64, u64) {
        let pause_len = clock.checked_sub(self.paused_at);
        debug_assert!(
            pause_len.is_some(),
            "pause episode of request {} ends at step {clock}, before it began at {}",
            self.req.id,
            self.paused_at
        );
        let pause_len = pause_len.unwrap_or(0);
        let pre_first = if self.first_token_step.is_none() {
            pause_len
        } else {
            0
        };
        (
            pause_len,
            self.paused_steps + pause_len,
            self.paused_steps_pre_first + pre_first,
        )
    }

    /// Completion record for a pause episode ended at `clock` without a
    /// resume — deadline eviction or client cancellation (the final,
    /// never-resumed episode counts as paused time).
    fn finish_paused(&mut self, clock: u64, finish: FinishReason) -> Completion {
        let (_, paused_steps, pre_first) = self.end_episode(clock);
        Completion {
            id: self.req.id,
            model: self.req.model,
            priority: self.req.priority,
            tokens: std::mem::take(&mut self.generated),
            finish,
            arrival_step: self.req.arrival_step,
            deadline_steps: self.req.deadline_steps,
            admitted_step: Some(self.admitted_step),
            first_token_step: self.first_token_step,
            finished_step: clock,
            preemptions: self.preemptions,
            paused_steps,
            paused_steps_before_first_token: pre_first,
            retry_after_steps: None,
        }
    }
}

impl ActiveSeq {
    /// Tokens this sequence advances in the next batched step: a prompt
    /// chunk of at most `prefill_chunk` while prefilling (clipped at a
    /// pending harvest boundary so the post-prefix state is observable),
    /// exactly 1 while decoding. [`ActiveSeq::feed`] and the phase-8
    /// bookkeeping both derive from this, so they can never disagree.
    fn feed_len(&self, prefill_chunk: usize) -> usize {
        if self.pos < self.req.prompt.len() {
            let mut end = (self.pos + prefill_chunk.max(1)).min(self.req.prompt.len());
            if let Some(h) = self.harvest {
                if self.pos < h {
                    end = end.min(h);
                }
            }
            end - self.pos
        } else {
            1
        }
    }

    /// Tokens this sequence feeds into the next batched step: a prompt
    /// chunk of at most `prefill_chunk` tokens while prefilling, the
    /// previously sampled token while decoding.
    fn feed(&self, prefill_chunk: usize) -> &[u32] {
        if self.pos < self.req.prompt.len() {
            &self.req.prompt[self.pos..self.pos + self.feed_len(prefill_chunk)]
        } else {
            std::slice::from_ref(
                self.generated
                    .last()
                    .expect("decode implies a sampled token"),
            )
        }
    }
}

/// Engine limits.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Slot-pool capacity (maximum resident sequences).
    pub slots: usize,
    /// Step budget; `run` stops here even with work outstanding.
    pub max_steps: u64,
    /// Prompt tokens one prefilling sequence may consume per step
    /// (≥ 1). 1 reproduces the strict one-token-per-step loop; larger
    /// budgets speed prefill `chunk×` while bounding how long any one
    /// prompt can monopolize a step's work.
    pub prefill_chunk: usize,
    /// Host threads executing each batched model step (≥ 1). 1 runs
    /// every backend sequentially; larger values build one shared
    /// [`WorkerPool`] at construction and attach it to every registered
    /// backend, which then shard each per-model sub-batch across the
    /// pool. Outputs are **bit-identical** for any thread count (pinned
    /// by the engine equivalence proptests), so this knob trades host
    /// wall-clock only — never results.
    pub threads: usize,
    /// Token-level admission caps layered under every policy
    /// ([`TokenBudget`]); `None` (the default) keeps slot-only
    /// admission. Calibrate from the accelerator cost model with
    /// [`crate::accel_cost::calibrate_token_budget`].
    pub token_budget: Option<TokenBudget>,
    /// Shared-prefix state-cache capacity in snapshots
    /// ([`crate::prefix::PrefixCache`]); `None` (the default) disables
    /// the cache, making [`GenRequest::shared_prefix`] markers inert.
    /// `Some(0)` is rejected at construction.
    pub prefix_cache: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            slots: 16,
            max_steps: 100_000,
            prefill_chunk: 1,
            threads: 1,
            token_budget: None,
            prefix_cache: None,
        }
    }
}

/// The multi-tenant serving engine over a registry of model backends.
pub struct ServeEngine<'m> {
    registry: ModelRegistry<'m>,
    pool: SlotPool,
    /// The shared worker pool when [`EngineConfig::threads`] > 1; every
    /// registered backend holds a clone and shards its sub-batches over
    /// it. `None` means sequential execution.
    workers: Option<Arc<WorkerPool>>,
    cfg: EngineConfig,
    /// Future arrivals, sorted by `arrival_step` (then id).
    pending: VecDeque<GenRequest>,
    /// Arrived, unadmitted requests in arrival order. Policies select
    /// from the whole queue, so this is a plain vector, not a FIFO.
    waiting: Vec<GenRequest>,
    active: Vec<ActiveSeq>,
    /// Preempted sequences awaiting a slot, oldest pause first. They
    /// hold no slot — just their fixed-size saved state — and re-enter
    /// through the policy's admission picks.
    paused: Vec<PausedSeq>,
    clock: u64,
    completions: Vec<Completion>,
    trace: RunTrace,
    total_prefill_tokens: u64,
    total_decode_tokens: u64,
    /// Token-advances per model across all steps (Σ sub-batch tokens).
    processed_per_model: Vec<u64>,
    /// Pause events across the run.
    total_preemptions: u64,
    /// Resume events across the run.
    total_resumes: u64,
    /// Steps between pause and resume, per completed episode.
    resume_latency: Vec<f64>,
    /// Requests whose clients asked for cancellation; honored at the
    /// top of the next step.
    cancels: HashSet<RequestId>,
    /// Requests evicted by client cancellation across the run.
    total_cancellations: usize,
    /// Token-advances spent on requests that were later cancelled.
    total_wasted_advances: u64,
    /// Minimum remaining service (steps) of cancelled residents at the
    /// moment their slot was reclaimed.
    total_reclaimed_slot_steps: u64,
    /// Saved states of submitted session resumes, restored into the
    /// slot at admission ([`ServeEngine::submit_with_state`]).
    resume_states: HashMap<RequestId, PausedState>,
    /// Session snapshots saved at retirement, awaiting
    /// [`ServeEngine::take_session_snapshots`].
    session_snapshots: Vec<(u64, SessionSnapshot)>,
    /// Whether steps record [`StepEvent`]s.
    events_enabled: bool,
    /// Events recorded since [`ServeEngine::take_events`].
    events: Vec<StepEvent>,
    /// The observability layer, when enabled
    /// ([`ServeEngine::enable_obs`]). Boxed so the disabled engine pays
    /// one word and one branch per hook.
    obs: Option<Box<EngineObs>>,
    /// Fault-tolerance knobs ([`ServeEngine::set_resilience`]); the
    /// default is inert on the fault-free path.
    resilience: ResilienceConfig,
    /// Per-model quarantine state machine.
    health: HealthTracker,
    /// Reusable admission mask (`true` = model accepts no admissions),
    /// refreshed in place each step so the hot path stays
    /// allocation-free.
    quarantine_mask: Vec<bool>,
    /// Sustained-overload ladder walker (inert unless
    /// [`ResilienceConfig::degradation`] is set).
    degradation: DegradationController,
    /// Requests retired as [`FinishReason::Failed`] by backend faults.
    total_failed: usize,
    /// Arrivals shed as [`FinishReason::Rejected`].
    total_rejected: usize,
    /// Backend faults contained (error returns plus caught panics).
    total_backend_faults: u64,
    /// Quarantine entries (first faults and half-open re-faults).
    total_quarantine_entries: u64,
    /// Quarantine recoveries (half-open canary survived).
    total_quarantine_recoveries: u64,
    /// The shared-prefix state cache, when enabled
    /// ([`EngineConfig::prefix_cache`]).
    prefix: Option<PrefixCache>,
    /// Admissions the token budget deferred on the *previous* step —
    /// feeds the overload shed hint so budget-deferred congestion and
    /// queue depth report consistent retry semantics.
    budget_deferred_last_step: u64,
    /// Admissions the token budget deferred across the run.
    total_budget_deferrals: u64,
    /// Peak resident-token footprint (Σ `prompt + max_new` over
    /// slot-holders) observed across the run.
    peak_resident_tokens: usize,
}

impl<'m> ServeEngine<'m> {
    /// Builds a single-model engine over the FP reference backend — the
    /// one-entry special case of [`ServeEngine::with_registry`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero-slot pool or a
    /// zero prefill chunk.
    pub fn new(model: &'m MambaModel, cfg: EngineConfig) -> Result<Self, ServeError> {
        Self::with_registry(ModelRegistry::single(model), cfg)
    }

    /// Builds an engine multiplexing every registered backend over one
    /// fresh slot pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a zero-slot pool, a
    /// zero prefill chunk, or an empty registry.
    pub fn with_registry(
        mut registry: ModelRegistry<'m>,
        cfg: EngineConfig,
    ) -> Result<Self, ServeError> {
        if cfg.slots == 0 {
            return Err(ServeError::InvalidConfig("slot pool of size 0".into()));
        }
        if cfg.prefill_chunk == 0 {
            return Err(ServeError::InvalidConfig(
                "prefill chunk of 0 tokens per step".into(),
            ));
        }
        if cfg.threads == 0 {
            return Err(ServeError::InvalidConfig(
                "engine with 0 threads (1 = sequential)".into(),
            ));
        }
        if registry.is_empty() {
            return Err(ServeError::InvalidConfig(
                "engine needs at least one registered model".into(),
            ));
        }
        if let Some(budget) = cfg.token_budget {
            // Re-validate here so a literal-built budget can't smuggle a
            // zero cap past `TokenBudget::new`.
            TokenBudget::new(budget.max_prefill_tokens_per_step, budget.max_total_tokens)?;
        }
        if cfg.prefix_cache == Some(0) {
            return Err(ServeError::InvalidConfig(
                "prefix cache of 0 entries (use None to disable)".into(),
            ));
        }
        let workers = (cfg.threads > 1).then(|| {
            let pool = Arc::new(WorkerPool::new(cfg.threads));
            registry.attach_pool(&pool);
            pool
        });
        let template = registry.new_state();
        let n_models = registry.len();
        Ok(ServeEngine {
            registry,
            pool: SlotPool::new(&template, cfg.slots),
            workers,
            cfg,
            pending: VecDeque::new(),
            waiting: Vec::new(),
            active: Vec::new(),
            paused: Vec::new(),
            clock: 0,
            completions: Vec::new(),
            trace: RunTrace::default(),
            total_prefill_tokens: 0,
            total_decode_tokens: 0,
            processed_per_model: vec![0; n_models],
            total_preemptions: 0,
            total_resumes: 0,
            resume_latency: Vec::new(),
            cancels: HashSet::new(),
            total_cancellations: 0,
            total_wasted_advances: 0,
            total_reclaimed_slot_steps: 0,
            resume_states: HashMap::new(),
            session_snapshots: Vec::new(),
            events_enabled: false,
            events: Vec::new(),
            obs: None,
            resilience: ResilienceConfig::default(),
            health: HealthTracker::new(n_models),
            quarantine_mask: vec![false; n_models],
            degradation: DegradationController::default(),
            total_failed: 0,
            total_rejected: 0,
            total_backend_faults: 0,
            total_quarantine_entries: 0,
            total_quarantine_recoveries: 0,
            prefix: cfg.prefix_cache.map(PrefixCache::new),
            budget_deferred_last_step: 0,
            total_budget_deferrals: 0,
            peak_resident_tokens: 0,
        })
    }

    /// Replaces the fault-tolerance configuration (quarantine shape,
    /// bounded admission queue, degradation ladder). The default
    /// [`ResilienceConfig`] is inert until a fault occurs, so an engine
    /// that never calls this behaves bit-identically to one predating
    /// the fault layer; [`ResilienceConfig::none`] is the no-mitigation
    /// baseline the chaos study compares against.
    pub fn set_resilience(&mut self, cfg: ResilienceConfig) {
        self.resilience = cfg;
    }

    /// The current fault-tolerance configuration.
    pub fn resilience(&self) -> &ResilienceConfig {
        &self.resilience
    }

    /// Quarantine state of model `id` (`None` for an unknown id).
    pub fn backend_health(&self, id: usize) -> Option<BackendHealth> {
        (id < self.registry.len()).then(|| self.health.get(id))
    }

    /// Current rung of the degradation ladder (0 = nominal; see
    /// [`crate::resilience`] for the ladder).
    pub fn degradation_level(&self) -> u8 {
        self.degradation.level()
    }

    /// Prompt tokens one prefilling sequence may consume per step right
    /// now: [`EngineConfig::prefill_chunk`], halved (never below 1)
    /// while the degradation ladder is at level ≥ 1. Chunked prefill is
    /// exact, so shrinking the chunk mid-run never changes outputs —
    /// only how work interleaves.
    pub fn effective_prefill_chunk(&self) -> usize {
        if self.degradation.level() >= 1 {
            (self.cfg.prefill_chunk / 2).max(1)
        } else {
            self.cfg.prefill_chunk
        }
    }

    /// Requests retired as [`FinishReason::Failed`] by backend faults.
    pub fn failed_count(&self) -> usize {
        self.total_failed
    }

    /// Arrivals shed as [`FinishReason::Rejected`] by overload
    /// protection.
    pub fn rejected_count(&self) -> usize {
        self.total_rejected
    }

    /// Backend faults contained so far (error returns plus caught
    /// panics, one per model per step at most).
    pub fn backend_fault_count(&self) -> u64 {
        self.total_backend_faults
    }

    /// Quarantine transitions so far: `(entries, recoveries)`.
    pub fn quarantine_transitions(&self) -> (u64, u64) {
        (
            self.total_quarantine_entries,
            self.total_quarantine_recoveries,
        )
    }

    /// The registry of backends this engine multiplexes.
    pub fn registry(&self) -> &ModelRegistry<'m> {
        &self.registry
    }

    /// Threads executing each batched model step (1 = sequential; see
    /// [`EngineConfig::threads`]).
    pub fn worker_threads(&self) -> usize {
        self.workers.as_ref().map_or(1, |p| p.threads())
    }

    /// Submits requests; they enter the waiting queue at their
    /// `arrival_step`. Must be sorted by arrival step (generators
    /// produce them that way).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for empty prompts or
    /// out-of-order arrivals, and [`ServeError::UnknownModel`] for a
    /// request naming a model the registry does not hold.
    pub fn submit(&mut self, requests: Vec<GenRequest>) -> Result<(), ServeError> {
        for r in requests {
            if r.prompt.is_empty() {
                return Err(ServeError::InvalidConfig(format!(
                    "request {} has an empty prompt",
                    r.id
                )));
            }
            if r.model >= self.registry.len() {
                return Err(ServeError::UnknownModel(format!(
                    "request {} names model id {} but only {} model(s) are registered",
                    r.id,
                    r.model,
                    self.registry.len()
                )));
            }
            if let Some(back) = self.pending.back() {
                if r.arrival_step < back.arrival_step {
                    return Err(ServeError::InvalidConfig(
                        "submissions must be sorted by arrival step".into(),
                    ));
                }
            }
            self.pending.push_back(r);
        }
        Ok(())
    }

    /// Submits one request that *resumes* a stored session snapshot
    /// instead of starting from a zeroed state. The snapshot's pending
    /// token is prepended to the prompt (it was sampled last turn but
    /// never fed through the model), and on admission the saved state
    /// is restored into the claimed slot — one state-transfer move in
    /// the trace, priced like a preemption resume, in place of
    /// re-prefilling the whole conversation.
    ///
    /// # Errors
    ///
    /// Everything [`ServeEngine::submit`] rejects, plus
    /// [`ServeError::InvalidConfig`] for a snapshot whose state shape
    /// does not fit this engine's slot pool.
    pub fn submit_with_state(
        &mut self,
        mut req: GenRequest,
        snapshot: SessionSnapshot,
    ) -> Result<(), ServeError> {
        let template = self.registry.new_state();
        let state = snapshot.state.state();
        let compatible = state.layers.len() == template.layers.len()
            && state.layers.iter().zip(&template.layers).all(|(a, b)| {
                a.h.len() == b.h.len()
                    && a.conv.channels() == b.conv.channels()
                    && a.conv.kernel() == b.conv.kernel()
            });
        if !compatible {
            return Err(ServeError::InvalidConfig(format!(
                "request {} resumes a session state whose shape does not fit this engine's \
                 slot pool",
                req.id
            )));
        }
        req.prompt.insert(0, snapshot.pending_token);
        let id = req.id;
        self.submit(vec![req])?;
        self.resume_states.insert(id, snapshot.state);
        Ok(())
    }

    /// Requests cancellation of `id` (client hang-up). At the top of
    /// the next step the request is evicted from wherever it sits —
    /// pending, waiting, resident, or paused — with
    /// [`FinishReason::Cancelled`]; a cancelled *resident* frees its
    /// slot within that one step, and the freed capacity is offered to
    /// admission in the same step. Unknown or already-finished ids are
    /// ignored (the cancel raced with completion).
    pub fn cancel(&mut self, id: RequestId) {
        self.cancels.insert(id);
    }

    /// Turns on per-step [`StepEvent`] recording. Off by default so
    /// closed-loop benchmark runs don't pay for a feed nobody drains.
    pub fn enable_events(&mut self) {
        self.events_enabled = true;
    }

    /// Drains the [`StepEvent`]s recorded since the last call.
    pub fn take_events(&mut self) -> Vec<StepEvent> {
        std::mem::take(&mut self.events)
    }

    /// Drains the `(session id, snapshot)` pairs saved by retirements
    /// of session-tagged requests since the last call.
    pub fn take_session_snapshots(&mut self) -> Vec<(u64, SessionSnapshot)> {
        std::mem::take(&mut self.session_snapshots)
    }

    /// Turns on the observability layer: engine metrics (per-model
    /// series registered from this engine's registry), per-step phase
    /// spans, and the flight recorder. Off by default — a disabled
    /// engine pays one branch per hook. Enabling mid-run starts the
    /// wall-clock epoch at the call, replacing any prior layer.
    pub fn enable_obs(&mut self, cfg: ObsConfig) {
        let names: Vec<&str> = self.registry.iter().map(|(_, name, _)| name).collect();
        self.obs = Some(Box::new(EngineObs::new(cfg, &names)));
    }

    /// The observability layer, when enabled.
    pub fn obs(&self) -> Option<&EngineObs> {
        self.obs.as_deref()
    }

    /// Mutable access to the observability layer, when enabled.
    pub fn obs_mut(&mut self) -> Option<&mut EngineObs> {
        self.obs.as_deref_mut()
    }

    /// Detaches and returns the observability layer (the engine keeps
    /// running un-instrumented). The frontend uses this to hand the
    /// final metrics/trace/flight state to the caller with the run
    /// report.
    pub fn take_obs(&mut self) -> Option<Box<EngineObs>> {
        self.obs.take()
    }

    /// Opens a phase span when observability is enabled.
    #[inline]
    fn obs_begin(&mut self, name: &'static str, cat: &'static str) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.spans.begin(name, cat, self.clock);
        }
    }

    /// Closes the innermost phase span when observability is enabled.
    #[inline]
    fn obs_end(&mut self) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.spans.end();
        }
    }

    /// Submitted session resumes whose saved state has not yet been
    /// restored into a slot (drops to zero once they are admitted or
    /// leave the engine — nothing leaks).
    pub fn pending_resumes(&self) -> usize {
        self.resume_states.len()
    }

    /// The limits this engine was built with.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Completed/evicted requests so far.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Current virtual time in steps.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The shared-prefix state cache, when enabled
    /// ([`EngineConfig::prefix_cache`]) — hit/miss/eviction counters and
    /// occupancy for tests and reports.
    pub fn prefix_cache(&self) -> Option<&PrefixCache> {
        self.prefix.as_ref()
    }

    /// Admissions deferred by the token budget across the run
    /// ([`EngineConfig::token_budget`]); 0 with no budget set.
    pub fn budget_deferrals(&self) -> u64 {
        self.total_budget_deferrals
    }

    /// Peak resident-token footprint (Σ `prompt + max_new` over
    /// slot-holders at the post-admission point) observed so far.
    pub fn peak_resident_tokens(&self) -> usize {
        self.peak_resident_tokens
    }

    /// Slot-pool capacity.
    pub fn capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Currently free slots.
    pub fn free_slots(&self) -> usize {
        self.pool.free_count()
    }

    /// Currently resident sequences.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Currently paused (preempted, slotless) sequences.
    pub fn paused_count(&self) -> usize {
        self.paused.len()
    }

    /// Whether any request is pending, waiting, paused, or resident.
    pub fn has_work(&self) -> bool {
        !self.pending.is_empty()
            || !self.waiting.is_empty()
            || !self.paused.is_empty()
            || !self.active.is_empty()
    }

    /// Runs until all submitted work drains or the step budget is hit,
    /// then returns the run report.
    ///
    /// # Errors
    ///
    /// Propagates model step errors (invalid tokens, state mismatch).
    pub fn run(&mut self, policy: &mut dyn Policy) -> Result<ServeReport, ServeError> {
        while self.has_work() && self.clock < self.cfg.max_steps {
            self.step(policy)?;
        }
        Ok(self.report(&*policy))
    }

    /// Records the eviction of a never-admitted request (pending or
    /// waiting) — deadline expiry or client cancellation.
    fn evict_unadmitted(
        completions: &mut Vec<Completion>,
        r: &GenRequest,
        clock: u64,
        finish: FinishReason,
    ) {
        completions.push(Completion {
            id: r.id,
            model: r.model,
            priority: r.priority,
            tokens: Vec::new(),
            finish,
            arrival_step: r.arrival_step,
            deadline_steps: r.deadline_steps,
            admitted_step: None,
            first_token_step: None,
            finished_step: clock,
            preemptions: 0,
            paused_steps: 0,
            paused_steps_before_first_token: 0,
            retry_after_steps: None,
        });
    }

    /// Scheduling views of the resident sequences, batch order.
    fn resident_views(&self) -> Vec<SeqView> {
        self.active
            .iter()
            .map(|s| {
                SeqView::new(
                    &s.req,
                    s.req
                        .min_steps_remaining(s.pos, s.generated.len(), self.cfg.prefill_chunk),
                )
            })
            .collect()
    }

    /// Scheduling views of the paused sequences, oldest pause first.
    fn paused_views(&self) -> Vec<SeqView> {
        self.paused
            .iter()
            .map(|p| p.view(self.cfg.prefill_chunk))
            .collect()
    }

    /// Executes one engine step: arrivals → expiry/doomed eviction →
    /// policy preemption (pause residents for urgent work) → policy
    /// admission (fresh arrivals and resumes compete for the freed
    /// slots) → batched model advance (chunked prefill + decode) →
    /// sampling/finish/evict bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates model step errors.
    pub fn step(&mut self, policy: &mut dyn Policy) -> Result<(), ServeError> {
        let completions_at_entry = self.completions.len();
        let snapshots_at_entry = self.session_snapshots.len();
        // Wall-clock timing and the step span exist only when the
        // observability layer is on — a bare engine pays one branch.
        let wall_start = self.obs.is_some().then(Instant::now);
        let cat = policy.name();
        self.obs_begin("step", cat);

        // 0. Fault-layer heartbeat. Every registered backend observes
        //    the step clock — quarantined ones included, so a fault
        //    injector's windows elapse in virtual time whether or not
        //    the engine routes work to it (like a real transient fault
        //    clearing on its own schedule). Then quarantine windows
        //    whose backoff elapsed open half-way: admission below will
        //    offer each such backend exactly one canary.
        for (_, _, backend) in self.registry.iter() {
            backend.on_step(self.clock);
        }
        {
            let clock = self.clock;
            let obs = &mut self.obs;
            self.health.tick(clock, |mid, _level| {
                if let Some(o) = obs.as_deref_mut() {
                    o.fault_event(clock, mid as u32, FaultKind::HalfOpen);
                }
            });
        }

        // 1. Arrivals whose time has come join the waiting queue —
        //    unless overload protection sheds them: with a bounded
        //    queue, arrivals beyond `queue_limit` are turned away, and
        //    from rung 2 of the degradation ladder Batch-priority
        //    arrivals are shed outright. A shed request retires as
        //    `Rejected` with a retry hint scaled to queue pressure; it
        //    never holds a slot and does no model work. From rung 3,
        //    degradable (non-Interactive, non-session) arrivals are
        //    rerouted to the registry's cheapest backend.
        let degradation_level = self.degradation.level();
        let reroute_to = (degradation_level >= 3)
            .then(|| self.registry.cheapest_model())
            .flatten();
        while self
            .pending
            .front()
            .is_some_and(|r| r.arrival_step <= self.clock)
        {
            let mut r = self.pending.pop_front().expect("front checked");
            let over_limit = self
                .resilience
                .queue_limit
                .is_some_and(|lim| self.waiting.len() >= lim);
            let shed_class = degradation_level >= 2 && r.priority == Priority::Batch;
            if over_limit || shed_class {
                // Hint: the steps the backlog ahead needs to drain at
                // one slot-pool wave per step — crude, but
                // deterministic and monotone in pressure. Token-budget
                // deferrals slow the drain below one wave per step, so
                // last step's deferral count is added: a client turned
                // away under budget pressure waits longer than one
                // turned away by queue depth alone (saturating — the
                // hint is advisory, never a wrap).
                let hint = (1 + self.waiting.len() as u64 / self.pool.capacity().max(1) as u64)
                    .saturating_add(self.budget_deferred_last_step);
                self.total_rejected += 1;
                // A shed session resume never restores its state.
                self.resume_states.remove(&r.id);
                self.completions.push(Completion {
                    id: r.id,
                    model: r.model,
                    priority: r.priority,
                    tokens: Vec::new(),
                    finish: FinishReason::Rejected,
                    arrival_step: r.arrival_step,
                    deadline_steps: r.deadline_steps,
                    admitted_step: None,
                    first_token_step: None,
                    finished_step: self.clock,
                    preemptions: 0,
                    paused_steps: 0,
                    paused_steps_before_first_token: 0,
                    retry_after_steps: Some(hint),
                });
                continue;
            }
            if let Some(cheap) = reroute_to {
                // Session resumes stay on their model: their saved
                // state embodies that model's decode history.
                if r.priority != Priority::Interactive && !self.resume_states.contains_key(&r.id) {
                    r.model = cheap;
                }
            }
            if let Some(o) = self.obs.as_deref_mut() {
                o.lifecycle(r.id, self.clock, LifecyclePhase::Queued);
            }
            self.waiting.push(r);
        }

        // 1b. Client cancellations: a cancelled request leaves from
        //     wherever it sits. A cancelled *resident* frees its slot
        //     right here — before admission — so the capacity it hands
        //     back is re-offered this very step; its sunk
        //     token-advances are booked as wasted work and the minimum
        //     service it still owed as reclaimed slot-steps. Ids the
        //     engine no longer holds are dropped silently (the cancel
        //     raced with completion).
        let mut cancelled_this_step = 0usize;
        self.obs_begin("cancel", cat);
        if !self.cancels.is_empty() {
            let cancels = std::mem::take(&mut self.cancels);
            for id in &cancels {
                // A cancelled session resume never restores its state.
                self.resume_states.remove(id);
            }
            let clock = self.clock;
            let chunk = self.cfg.prefill_chunk;
            let completions = &mut self.completions;
            self.pending.retain(|r| {
                let hit = cancels.contains(&r.id);
                if hit {
                    cancelled_this_step += 1;
                    Self::evict_unadmitted(completions, r, clock, FinishReason::Cancelled);
                }
                !hit
            });
            self.waiting.retain(|r| {
                let hit = cancels.contains(&r.id);
                if hit {
                    cancelled_this_step += 1;
                    Self::evict_unadmitted(completions, r, clock, FinishReason::Cancelled);
                }
                !hit
            });
            let pool = &mut self.pool;
            let mut wasted = 0u64;
            let mut reclaimed = 0u64;
            self.active.retain_mut(|seq| {
                if !cancels.contains(&seq.req.id) {
                    return true;
                }
                wasted += seq.pos as u64;
                reclaimed += seq
                    .req
                    .min_steps_remaining(seq.pos, seq.generated.len(), chunk);
                cancelled_this_step += 1;
                pool.release(seq.slot);
                completions.push(Completion {
                    id: seq.req.id,
                    model: seq.req.model,
                    priority: seq.req.priority,
                    tokens: std::mem::take(&mut seq.generated),
                    finish: FinishReason::Cancelled,
                    arrival_step: seq.req.arrival_step,
                    deadline_steps: seq.req.deadline_steps,
                    admitted_step: Some(seq.admitted_step),
                    first_token_step: seq.first_token_step,
                    finished_step: clock,
                    preemptions: seq.preemptions,
                    paused_steps: seq.paused_steps,
                    paused_steps_before_first_token: seq.paused_steps_pre_first,
                    retry_after_steps: None,
                });
                false
            });
            self.paused.retain_mut(|p| {
                if !cancels.contains(&p.req.id) {
                    return true;
                }
                wasted += p.pos as u64;
                cancelled_this_step += 1;
                completions.push(p.finish_paused(clock, FinishReason::Cancelled));
                false
            });
            self.total_cancellations += cancelled_this_step;
            self.total_wasted_advances += wasted;
            self.total_reclaimed_slot_steps += reclaimed;
        }
        self.obs_end();
        self.obs_begin("expire", cat);

        // 2. Evict deadline-expired requests still waiting — they must
        //    not burn a slot or a batched model step on admission.
        {
            let clock = self.clock;
            let completions = &mut self.completions;
            self.waiting.retain(|r| {
                let expired = r
                    .deadline_steps
                    .is_some_and(|d| clock.saturating_sub(r.arrival_step) >= d);
                if expired {
                    Self::evict_unadmitted(completions, r, clock, FinishReason::DeadlineExceeded);
                }
                !expired
            });
        }

        // 3. Evict resident sequences whose deadline lapsed before this
        //    step — the same pre-step rule as the waiting queue, so an
        //    expired sequence never joins another batched model step.
        {
            let clock = self.clock;
            let pool = &mut self.pool;
            let completions = &mut self.completions;
            self.active.retain_mut(|seq| {
                let expired = seq
                    .req
                    .deadline_steps
                    .is_some_and(|d| clock.saturating_sub(seq.req.arrival_step) >= d);
                if !expired {
                    return true;
                }
                pool.release(seq.slot);
                completions.push(Completion {
                    id: seq.req.id,
                    model: seq.req.model,
                    priority: seq.req.priority,
                    tokens: std::mem::take(&mut seq.generated),
                    finish: FinishReason::DeadlineExceeded,
                    arrival_step: seq.req.arrival_step,
                    deadline_steps: seq.req.deadline_steps,
                    admitted_step: Some(seq.admitted_step),
                    first_token_step: seq.first_token_step,
                    finished_step: clock,
                    preemptions: seq.preemptions,
                    paused_steps: seq.paused_steps,
                    paused_steps_before_first_token: seq.paused_steps_pre_first,
                    retry_after_steps: None,
                });
                false
            });
        }

        // 3b. The same expiry rule for paused sequences: a lapsed
        //     deadline ends the request even while it holds no slot.
        {
            let clock = self.clock;
            let completions = &mut self.completions;
            self.paused.retain_mut(|p| {
                let expired = p
                    .req
                    .deadline_steps
                    .is_some_and(|d| clock.saturating_sub(p.req.arrival_step) >= d);
                if expired {
                    completions.push(p.finish_paused(clock, FinishReason::DeadlineExceeded));
                }
                !expired
            });
        }
        self.obs_end();
        self.obs_begin("doom", cat);

        // 4. Doomed eviction (deadline-aware policies only): a waiting
        //    or paused request whose minimal completion no longer fits
        //    its budget is a guaranteed miss — drop it *before*
        //    admission instead of wasting slot steps discovering that
        //    at expiry. Paused sequences are judged on their *remaining*
        //    work: partial progress buys real slack.
        if policy.evicts_doomed() {
            let clock = self.clock;
            let chunk = self.cfg.prefill_chunk;
            let completions = &mut self.completions;
            self.waiting.retain(|r| {
                let doomed = r
                    .absolute_deadline()
                    .is_some_and(|abs| clock + r.min_steps_to_complete(chunk) > abs);
                if doomed {
                    Self::evict_unadmitted(completions, r, clock, FinishReason::DeadlineExceeded);
                }
                !doomed
            });
            self.paused.retain_mut(|p| {
                let doomed = p.req.absolute_deadline().is_some_and(|abs| {
                    clock + p.req.min_steps_remaining(p.pos, p.generated.len(), chunk) > abs
                });
                if doomed {
                    completions.push(p.finish_paused(clock, FinishReason::DeadlineExceeded));
                }
                !doomed
            });
        }
        self.obs_end();

        // 5. Preemption: the policy may pause residents so that more
        //    urgent candidates can take their slots this very step. A
        //    victim's fixed-size state is snapshotted via its backend,
        //    the slot is released, and the sequence joins the paused
        //    queue (it re-enters through admission as a candidate). The
        //    engine enforces index validity, mirroring admission.
        let chunk = self.effective_prefill_chunk();
        self.health.fill_mask(&mut self.quarantine_mask);
        let mut active_per_model = vec![0usize; self.registry.len()];
        for seq in &self.active {
            active_per_model[seq.req.model] += 1;
        }
        let mut preempted_this_step = 0usize;
        let mut resumed_this_step = 0usize;
        let mut admitted_this_step = 0usize;
        let mut sub_state_moves = vec![0usize; self.registry.len()];
        let mut resident_views = self.resident_views();
        let mut paused_views = self.paused_views();
        self.obs_begin("preempt", cat);
        {
            let mut victims = policy.preempt(&AdmissionCtx {
                waiting: &self.waiting,
                paused: &paused_views,
                residents: &resident_views,
                clock: self.clock,
                free_slots: self.pool.free_count(),
                active: self.active.len(),
                active_per_model: &active_per_model,
                prefill_chunk: chunk,
                quarantined: &self.quarantine_mask,
            });
            let mut seen = vec![false; self.active.len()];
            victims.retain(|&i| i < seen.len() && !std::mem::replace(&mut seen[i], true));
            victims.sort_unstable();
            for &i in victims.iter().rev() {
                let seq = self.active.remove(i);
                let backend = self
                    .registry
                    .get(seq.req.model)
                    .expect("resident implies registered");
                let state = backend.save_state(&self.pool.states()[seq.slot]);
                self.pool.release(seq.slot);
                active_per_model[seq.req.model] -= 1;
                sub_state_moves[seq.req.model] += 1;
                preempted_this_step += 1;
                self.total_preemptions += 1;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.lifecycle(seq.req.id, self.clock, LifecyclePhase::Preempted);
                }
                self.paused.push(PausedSeq {
                    state,
                    pos: seq.pos,
                    generated: seq.generated,
                    rng: seq.rng,
                    admitted_step: seq.admitted_step,
                    first_token_step: seq.first_token_step,
                    paused_at: self.clock,
                    preemptions: seq.preemptions + 1,
                    paused_steps: seq.paused_steps,
                    paused_steps_pre_first: seq.paused_steps_pre_first,
                    harvest: seq.harvest,
                    req: seq.req,
                });
            }
            // The views only change when someone was actually paused —
            // the common (non-preempting) step reuses them for select.
            if !victims.is_empty() {
                resident_views = self.resident_views();
                paused_views = self.paused_views();
            }
        }
        self.obs_end();
        self.obs_begin("admit", cat);

        // 6. Admission: the policy selects *which* candidates — fresh
        //    arrivals and paused sequences alike — take the free slots,
        //    in what order. Picking a paused candidate restores its
        //    saved state into the newly claimed slot (a resume). The
        //    engine enforces the invariants (bounds, uniqueness, free
        //    slots) so policies stay simple.
        let mut picks = policy.select(&AdmissionCtx {
            waiting: &self.waiting,
            paused: &paused_views,
            residents: &resident_views,
            clock: self.clock,
            free_slots: self.pool.free_count(),
            active: self.active.len(),
            active_per_model: &active_per_model,
            prefill_chunk: chunk,
            quarantined: &self.quarantine_mask,
        });
        let n_waiting = self.waiting.len();
        {
            let mut seen = vec![false; n_waiting + self.paused.len()];
            picks.retain(|&i| i < seen.len() && !std::mem::replace(&mut seen[i], true));
            // Quarantine gate, enforced by the engine so no policy can
            // leak work into a faulted domain: picks naming a
            // quarantined model are dropped; a half-open model admits
            // exactly one canary to probe it. (Cold path — the vec
            // allocates only on steps where some backend is unhealthy.)
            if self.health.any_unhealthy() {
                let health = &self.health;
                let waiting = &self.waiting;
                let paused = &self.paused;
                let mut canary_used = vec![false; self.registry.len()];
                picks.retain(|&i| {
                    let model = if i < n_waiting {
                        waiting[i].model
                    } else {
                        paused[i - n_waiting].req.model
                    };
                    match health.get(model) {
                        BackendHealth::Healthy => true,
                        BackendHealth::Quarantined { .. } => false,
                        BackendHealth::HalfOpen { .. } => {
                            !std::mem::replace(&mut canary_used[model], true)
                        }
                    }
                });
            }
            picks.truncate(self.pool.free_count());
        }
        // 6a. Token-budget gate ([`TokenBudget`]), layered under every
        //     policy: walk the surviving picks in policy order and defer
        //     any that would push this step's prefill feed past
        //     `max_prefill_tokens_per_step` or the resident footprint
        //     past `max_total_tokens`. Deferred picks stay queued (or
        //     paused) — admission pressure, never a drop. All accounting
        //     uses the *configured* chunk, not the degradation ladder's
        //     effective chunk, so a ladder recovering mid-run can never
        //     invalidate an admission the budget already granted.
        let mut budget_deferred_this_step = 0u64;
        if let Some(budget) = self.cfg.token_budget {
            let full_chunk = self.cfg.prefill_chunk;
            // Running totals start from what the residents already
            // commit this step: each prefilling sequence's next chunk,
            // and every slot-holder's worst-case footprint.
            let mut prefill_run: usize = self
                .active
                .iter()
                .filter(|s| s.pos < s.req.prompt.len())
                .map(|s| (s.req.prompt.len() - s.pos).min(full_chunk))
                .sum();
            let mut total_run: usize = self
                .active
                .iter()
                .map(|s| s.req.prompt.len() + s.req.max_new_tokens)
                .sum();
            let waiting = &self.waiting;
            let paused = &self.paused;
            picks.retain(|&i| {
                let (first_feed, footprint) = if i < n_waiting {
                    let r = &waiting[i];
                    // A fresh admission prefills from position 0; a
                    // prefix-cache hit would feed less, but the gate
                    // runs before the lookup, so it charges the
                    // worst case (the invariant stays an upper bound).
                    (
                        r.prompt.len().min(full_chunk),
                        r.prompt.len() + r.max_new_tokens,
                    )
                } else {
                    let p = &paused[i - n_waiting];
                    let feed = if p.pos < p.req.prompt.len() {
                        (p.req.prompt.len() - p.pos).min(full_chunk)
                    } else {
                        0
                    };
                    (feed, p.req.prompt.len() + p.req.max_new_tokens)
                };
                // Liveness valve: with nothing resident and nothing yet
                // admitted, the first pick runs even if it alone busts a
                // cap — an oversized request executes solo instead of
                // starving behind a budget it can never fit.
                let valve = prefill_run == 0 && total_run == 0;
                let fits = prefill_run + first_feed <= budget.max_prefill_tokens_per_step
                    && total_run + footprint <= budget.max_total_tokens;
                if fits || valve {
                    prefill_run += first_feed;
                    total_run += footprint;
                    true
                } else {
                    budget_deferred_this_step += 1;
                    false
                }
            });
        }
        self.total_budget_deferrals += budget_deferred_this_step;
        if !picks.is_empty() {
            let mut drained: Vec<Option<GenRequest>> = self.waiting.drain(..).map(Some).collect();
            let mut drained_paused: Vec<Option<PausedSeq>> =
                self.paused.drain(..).map(Some).collect();
            for &i in &picks {
                let slot = self.pool.alloc().expect("picks bounded by free slots");
                if i < n_waiting {
                    let req = drained[i].take().expect("picks are unique and in range");
                    let mut start_pos = 0usize;
                    let mut harvest = None;
                    // A session resume: restore the prior turn's saved
                    // state into the fresh slot (one state-transfer
                    // move, priced like a preemption resume) instead of
                    // starting from zeros.
                    if let Some(prior) = self.resume_states.remove(&req.id) {
                        let backend = self.registry.get(req.model).expect("validated at submit");
                        backend.restore_state(&prior, &mut self.pool.states_mut()[slot]);
                        sub_state_moves[req.model] += 1;
                        if let Some(o) = self.obs.as_deref_mut() {
                            o.session_restore();
                        }
                    } else if let Some(cache) = self.prefix.as_mut() {
                        // A shared-prefix marker (validated: at least
                        // one token must remain to feed). A cache hit
                        // restores the post-prefix snapshot — one
                        // state-transfer move, priced exactly like a
                        // resume — and prefill starts *after* the
                        // prefix. A miss marks the sequence for harvest
                        // in phase 8b.
                        if let Some(k) =
                            req.shared_prefix.filter(|&k| k > 0 && k < req.prompt.len())
                        {
                            if let Some(snap) = cache.lookup(req.model, &req.prompt[..k]) {
                                let backend =
                                    self.registry.get(req.model).expect("validated at submit");
                                backend.restore_state(snap, &mut self.pool.states_mut()[slot]);
                                sub_state_moves[req.model] += 1;
                                start_pos = k;
                                if let Some(o) = self.obs.as_deref_mut() {
                                    o.prefix_hit();
                                }
                            } else {
                                harvest = Some(k);
                                if let Some(o) = self.obs.as_deref_mut() {
                                    o.prefix_miss();
                                }
                            }
                        }
                    }
                    admitted_this_step += 1;
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.lifecycle(req.id, self.clock, LifecyclePhase::Admitted);
                    }
                    if self.events_enabled {
                        self.events.push(StepEvent::Started {
                            id: req.id,
                            step: self.clock,
                        });
                    }
                    let rng = StdRng::seed_from_u64(req.seed);
                    self.active.push(ActiveSeq {
                        slot,
                        pos: start_pos,
                        generated: Vec::with_capacity(req.max_new_tokens),
                        rng,
                        admitted_step: self.clock,
                        first_token_step: None,
                        preemptions: 0,
                        paused_steps: 0,
                        paused_steps_pre_first: 0,
                        harvest,
                        req,
                    });
                } else {
                    let p = drained_paused[i - n_waiting]
                        .take()
                        .expect("picks are unique and in range");
                    let backend = self
                        .registry
                        .get(p.req.model)
                        .expect("resident implies registered");
                    backend.restore_state(&p.state, &mut self.pool.states_mut()[slot]);
                    let (pause_len, paused_steps, pre_first) = p.end_episode(self.clock);
                    sub_state_moves[p.req.model] += 1;
                    resumed_this_step += 1;
                    self.total_resumes += 1;
                    self.resume_latency.push(pause_len as f64);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.lifecycle(p.req.id, self.clock, LifecyclePhase::Resumed);
                    }
                    self.active.push(ActiveSeq {
                        slot,
                        pos: p.pos,
                        generated: p.generated,
                        rng: p.rng,
                        admitted_step: p.admitted_step,
                        first_token_step: p.first_token_step,
                        preemptions: p.preemptions,
                        paused_steps,
                        paused_steps_pre_first: pre_first,
                        harvest: p.harvest,
                        req: p.req,
                    });
                }
            }
            self.waiting = drained.into_iter().flatten().collect();
            self.paused = drained_paused.into_iter().flatten().collect();
        }
        // Resident-token footprint at its per-step peak
        // (post-admission, pre-retirement) — the quantity
        // [`TokenBudget::max_total_tokens`] bounds, recorded whether or
        // not a budget is set so utilization is always reportable.
        let resident_tokens_this_step: usize = self
            .active
            .iter()
            .map(|s| s.req.prompt.len() + s.req.max_new_tokens)
            .sum();
        self.peak_resident_tokens = self.peak_resident_tokens.max(resident_tokens_this_step);
        self.obs_end();
        self.obs_begin("advance", cat);

        // 7. One batched advance per model: sequences are grouped into
        //    per-model sub-batches (each is one shared weight stream on
        //    the accelerator); a prefilling sequence feeds its next
        //    prompt chunk, a decoding one its previous sample. Outputs
        //    land per active sequence, so downstream bookkeeping is
        //    multiplexing- and chunking-agnostic.
        let total_batch = self.active.len();
        let mut sub_batches = vec![0usize; self.registry.len()];
        let mut sub_processed = vec![0usize; self.registry.len()];
        let mut step_logits: Vec<Option<Vec<f32>>> = vec![None; total_batch];
        let mut step_shards = 0u64;
        // Each backend is one fault domain: its advance runs under a
        // panic catch, so an error return or a panic fails only that
        // model's sub-batch this step — every other domain's results
        // land normally and the engine survives. At most one fault per
        // model per step; `true` marks a caught panic.
        let mut faulted: Vec<Option<bool>> = vec![None; self.registry.len()];
        for (mid, _, backend) in self.registry.iter() {
            let idxs: Vec<usize> = (0..self.active.len())
                .filter(|&i| self.active[i].req.model == mid)
                .collect();
            if idxs.is_empty() {
                continue;
            }
            let items: Vec<(usize, &[u32])> = idxs
                .iter()
                .map(|&i| (self.active[i].slot, self.active[i].feed(chunk)))
                .collect();
            let fed: usize = items.iter().map(|(_, toks)| toks.len()).sum();
            if let Some(o) = self.obs.as_deref_mut() {
                o.spans.begin("sub_batch", cat, self.clock);
            }
            // `AssertUnwindSafe` is justified the same way the worker
            // pool's is: on unwind the sub-batch's outputs are
            // discarded, its sequences retire as Failed with their
            // slots released, and `SlotPool::alloc` re-zeroes states on
            // reuse — torn state cannot reach a later request.
            let states = self.pool.states_mut();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                backend.advance_batch_indexed(&items, states)
            }));
            if let Some(o) = self.obs.as_deref_mut() {
                o.spans
                    .end_with([("model", mid as f64), ("tokens", fed as f64)]);
            }
            let results = match outcome {
                Ok(Ok(results)) => results,
                Ok(Err(_)) => {
                    faulted[mid] = Some(false);
                    continue;
                }
                Err(payload) => {
                    // The message is reconstructed for assertions only;
                    // the payload itself stops here.
                    let _ = panic_message(payload.as_ref());
                    faulted[mid] = Some(true);
                    continue;
                }
            };
            sub_batches[mid] = idxs.len();
            sub_processed[mid] = fed;
            self.processed_per_model[mid] += fed as u64;
            // Worker shards this sub-batch ran on: the pool never uses
            // more shards than sequences (mirrors the backend's
            // contiguous shard plan); 1 on the sequential path.
            step_shards += backend.pool_threads().min(idxs.len()) as u64;
            for (&i, (slot, logits)) in idxs.iter().zip(results) {
                debug_assert_eq!(self.active[i].slot, slot);
                step_logits[i] = Some(logits);
            }
            // A half-open backend whose canary advanced cleanly is
            // readmitted for full service.
            if self.health.on_clean_advance(mid) {
                self.total_quarantine_recoveries += 1;
                let clock = self.clock;
                if let Some(o) = self.obs.as_deref_mut() {
                    o.fault_event(clock, mid as u32, FaultKind::Recovered);
                }
            }
        }
        let worker_threads = self.worker_threads();
        if let Some(o) = self.obs.as_deref_mut() {
            o.pool_activity(worker_threads, step_shards);
        }

        // 7b. Fault containment: quarantine each faulted backend (with
        //     deterministic exponential backoff) and retire its
        //     residents as Failed — matching `step_logits` entries
        //     removed in tandem so the sampling loop below stays
        //     index-aligned. Paused sequences of the domain keep their
        //     pre-fault (intact) saved states and resume once the
        //     quarantine lifts; tokens generated before the fault ride
        //     out in the completion record.
        if faulted.iter().any(Option::is_some) {
            for (mid, fault) in faulted.iter().enumerate() {
                let Some(&was_panic) = fault.as_ref() else {
                    continue;
                };
                self.total_backend_faults += 1;
                // The unwound (or erroring) backend may hold torn
                // internal scratch: have it rebuild before it is ever
                // called again. The recovery hook is fault-isolated
                // too — a panic here stays contained.
                if let Some(backend) = self.registry.get(mid) {
                    let _ = catch_unwind(AssertUnwindSafe(|| backend.reset_after_fault()));
                }
                let clock = self.clock;
                let kind = if was_panic {
                    FaultKind::BackendPanic
                } else {
                    FaultKind::BackendError
                };
                if let Some(o) = self.obs.as_deref_mut() {
                    o.fault_event(clock, mid as u32, kind);
                }
                if self.resilience.quarantine {
                    self.total_quarantine_entries += 1;
                    self.health.on_fault(mid, clock, &self.resilience);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.fault_event(clock, mid as u32, FaultKind::Quarantined);
                    }
                }
            }
            let clock = self.clock;
            let mut i = 0;
            while i < self.active.len() {
                if faulted[self.active[i].req.model].is_none() {
                    i += 1;
                    continue;
                }
                let mut seq = self.active.remove(i);
                step_logits.remove(i);
                self.pool.release(seq.slot);
                self.total_failed += 1;
                // A failed request's pending session restore is dropped
                // by the step-close sweep below, like any other exit.
                self.completions.push(Completion {
                    id: seq.req.id,
                    model: seq.req.model,
                    priority: seq.req.priority,
                    tokens: std::mem::take(&mut seq.generated),
                    finish: FinishReason::Failed,
                    arrival_step: seq.req.arrival_step,
                    deadline_steps: seq.req.deadline_steps,
                    admitted_step: Some(seq.admitted_step),
                    first_token_step: seq.first_token_step,
                    finished_step: clock,
                    preemptions: seq.preemptions,
                    paused_steps: seq.paused_steps,
                    paused_steps_before_first_token: seq.paused_steps_pre_first,
                    retry_after_steps: None,
                });
            }
        }

        self.obs_end();
        self.obs_begin("sample", cat);

        // 8. Bookkeeping per sequence, in batch order. The step that
        //    consumes the final prompt chunk (or a decode step) yields
        //    the next sampled token.
        let mut prefill_tokens = 0usize;
        let mut decode_tokens = 0usize;
        for (seq, logits) in self.active.iter_mut().zip(&step_logits) {
            let logits = logits.as_ref().expect("every active sequence stepped");
            if seq.pos < seq.req.prompt.len() {
                // Mirrors `feed` exactly (both derive from `feed_len`),
                // including the clip at a pending harvest boundary.
                let fed = seq.feed_len(chunk);
                prefill_tokens += fed;
                seq.pos += fed;
            } else {
                seq.pos += 1;
            }
            if seq.pos >= seq.req.prompt.len() {
                let token = seq.req.sampler.sample(logits, &mut seq.rng);
                if seq.first_token_step.is_none() {
                    seq.first_token_step = Some(self.clock);
                    if let Some(o) = self.obs.as_deref_mut() {
                        o.lifecycle(seq.req.id, self.clock, LifecyclePhase::FirstToken);
                    }
                }
                seq.generated.push(token);
                decode_tokens += 1;
                if self.events_enabled {
                    self.events.push(StepEvent::Token {
                        id: seq.req.id,
                        token,
                        step: self.clock,
                    });
                }
            }
        }

        // 8b. Prefix harvest: a sequence whose prefill just crossed its
        //     cache-miss prefix boundary has, in its slot, *exactly* the
        //     state of a run that prefilled the prefix alone — feeding
        //     clips there ([`ActiveSeq::feed_len`]). Snapshot it into
        //     the cache (one state save on the shared stream, counted
        //     with the step's other state moves) unless a concurrent
        //     miss already harvested the same prefix this wave.
        if let Some(cache) = self.prefix.as_mut() {
            for seq in &mut self.active {
                let Some(h) = seq.harvest else { continue };
                if seq.pos < h {
                    continue;
                }
                debug_assert_eq!(seq.pos, h, "feeding clips at the harvest boundary");
                seq.harvest = None;
                if !cache.contains(seq.req.model, &seq.req.prompt[..h]) {
                    let backend = self
                        .registry
                        .get(seq.req.model)
                        .expect("resident implies registered");
                    cache.insert(
                        seq.req.model,
                        &seq.req.prompt[..h],
                        backend.save_state(&self.pool.states()[seq.slot]),
                    );
                    sub_state_moves[seq.req.model] += 1;
                }
            }
        }

        self.obs_end();
        self.obs_begin("retire", cat);

        // 9. Retire finished sequences (deadline expiry is handled
        //    pre-step, in 3).
        let clock = self.clock;
        let pool = &mut self.pool;
        let completions = &mut self.completions;
        let registry = &self.registry;
        let session_snapshots = &mut self.session_snapshots;
        self.active.retain_mut(|seq| {
            let hit_eos = seq
                .req
                .eos_token
                .is_some_and(|eos| seq.generated.last() == Some(&eos));
            let done = seq.generated.len() >= seq.req.max_new_tokens || hit_eos;
            if !done {
                return true;
            }
            let finish = if hit_eos {
                FinishReason::Eos
            } else {
                FinishReason::MaxTokens
            };
            // Session turns keep their final state for the next turn —
            // one state save on the shared stream, counted with the
            // step's other state moves. The last sampled token rides
            // along: it was never fed through the model, so the resume
            // feeds it first (see [`SessionSnapshot`]).
            if let Some(sid) = seq.req.session {
                let backend = registry
                    .get(seq.req.model)
                    .expect("resident implies registered");
                session_snapshots.push((
                    sid,
                    SessionSnapshot {
                        state: backend.save_state(&pool.states()[seq.slot]),
                        pending_token: *seq
                            .generated
                            .last()
                            .expect("finished implies a sampled token"),
                        consumed_tokens: seq.pos,
                    },
                ));
                sub_state_moves[seq.req.model] += 1;
            }
            pool.release(seq.slot);
            completions.push(Completion {
                id: seq.req.id,
                model: seq.req.model,
                priority: seq.req.priority,
                tokens: std::mem::take(&mut seq.generated),
                finish,
                arrival_step: seq.req.arrival_step,
                deadline_steps: seq.req.deadline_steps,
                admitted_step: Some(seq.admitted_step),
                first_token_step: seq.first_token_step,
                finished_step: clock,
                preemptions: seq.preemptions,
                paused_steps: seq.paused_steps,
                paused_steps_before_first_token: seq.paused_steps_pre_first,
                retry_after_steps: None,
            });
            false
        });
        self.obs_end();

        // 9b. Graceful degradation: fold this step's closing queue
        //     depth into the breach/recovery counters and walk the
        //     ladder on a sustained breach (or sustained recovery).
        //     Inert unless configured.
        if let Some(dcfg) = self.resilience.degradation {
            if let Some(level) = self.degradation.observe(self.waiting.len(), &dcfg) {
                if let Some(o) = self.obs.as_deref_mut() {
                    o.degradation(level);
                }
            }
        }

        // 10. Trace for the cost models. `batch_per_step` is residency
        //    (what URAM bounds); `processed_per_step` is token-advances
        //    (what the weight stream is shared across, hence what a
        //    step costs); `tokens_per_step` counts sampled outputs;
        //    `state_moves_per_step` is pause/resume traffic (each move
        //    is one fixed-size state on the shared memory stream).
        let processed: usize = sub_processed.iter().sum();
        self.total_prefill_tokens += prefill_tokens as u64;
        self.total_decode_tokens += decode_tokens as u64;
        self.trace.batch_per_step.push(total_batch);
        self.trace.processed_per_step.push(processed);
        self.trace.sub_batches_per_step.push(sub_batches);
        self.trace.sub_processed_per_step.push(sub_processed);
        self.trace.tokens_per_step.push(decode_tokens);
        self.trace.queue_depth_per_step.push(self.waiting.len());
        self.trace.preemptions_per_step.push(preempted_this_step);
        self.trace.resumes_per_step.push(resumed_this_step);
        self.trace.paused_depth_per_step.push(self.paused.len());
        self.trace
            .state_moves_per_step
            .push(sub_state_moves.iter().sum());
        self.trace.sub_state_moves_per_step.push(sub_state_moves);
        self.trace.cancellations_per_step.push(cancelled_this_step);
        self.trace.prefill_per_step.push(prefill_tokens);
        self.trace
            .resident_tokens_per_step
            .push(resident_tokens_this_step);
        self.trace
            .budget_deferred_per_step
            .push(budget_deferred_this_step as usize);
        self.budget_deferred_last_step = budget_deferred_this_step;

        // 10b. Observability close: end the step span with the step's
        //      headline numbers, then fold the step — its record, the
        //      requests that left the engine, its session parks, its
        //      per-model work — into metrics and the flight recorder.
        //      All of it is allocation-free in steady state.
        if let Some(o) = self.obs.as_deref_mut() {
            o.spans.end_with([
                ("batch", total_batch as f64),
                ("processed", processed as f64),
            ]);
            let wall_ns = wall_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let sub_processed_step = self
                .trace
                .sub_processed_per_step
                .last()
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let sub_moves_step = self
                .trace
                .sub_state_moves_per_step
                .last()
                .map(Vec::as_slice)
                .unwrap_or(&[]);
            let rec = StepRecord {
                step: self.clock,
                batch: total_batch as u32,
                processed: processed as u32,
                decode_tokens: decode_tokens as u32,
                prefill_tokens: prefill_tokens as u32,
                admitted: admitted_this_step as u32,
                preempted: preempted_this_step as u32,
                resumed: resumed_this_step as u32,
                // Filled by `close_step` from the completion delta.
                cancelled: 0,
                expired: 0,
                queue_depth: self.waiting.len() as u32,
                paused_depth: self.paused.len() as u32,
                free_slots: self.pool.free_count() as u32,
                state_moves: sub_moves_step.iter().sum::<usize>() as u32,
                wall_ns,
            };
            o.close_step(
                rec,
                &self.completions[completions_at_entry..],
                &self.session_snapshots[snapshots_at_entry..],
                sub_processed_step,
                sub_moves_step,
            );
            o.budget_deferred(budget_deferred_this_step);
        }

        // A request that left the engine this step (completed, expired,
        // or cancelled) can no longer claim its pending session
        // restore — drop the saved state so nothing leaks.
        if !self.resume_states.is_empty() {
            for c in &self.completions[completions_at_entry..] {
                self.resume_states.remove(&c.id);
            }
        }

        debug_assert_eq!(
            self.pool.free_count() + self.active.len(),
            self.pool.capacity(),
            "slot conservation violated"
        );

        self.clock += 1;
        Ok(())
    }

    /// Builds the aggregate report for the run so far. The policy names
    /// itself ([`Policy::name`]); no stringly-typed tag.
    pub fn report(&self, policy: &dyn Policy) -> ServeReport {
        let finished: Vec<&Completion> = self
            .completions
            .iter()
            .filter(|c| matches!(c.finish, FinishReason::MaxTokens | FinishReason::Eos))
            .collect();
        let evicted = self
            .completions
            .iter()
            .filter(|c| c.finish == FinishReason::DeadlineExceeded)
            .count();
        let ttft: Vec<f64> = finished
            .iter()
            .filter_map(|c| c.ttft_steps().map(|t| t as f64))
            .collect();
        let e2e: Vec<f64> = finished
            .iter()
            .filter_map(|c| c.e2e_steps().map(|e| e as f64))
            .collect();
        let queue: Vec<f64> = finished
            .iter()
            .filter_map(|c| c.queue_steps().map(|q| q as f64))
            .collect();
        // Cancelled requests are excluded from deadline accounting even
        // when they carried a budget: the client withdrew them, so they
        // neither hit nor missed (see [`Completion::deadline_hit`]).
        // Failed and rejected requests are excluded the same way — an
        // infrastructure fault or admission shed is not a scheduling
        // outcome.
        let deadline_total = self
            .completions
            .iter()
            .filter(|c| {
                c.deadline_steps.is_some()
                    && !matches!(
                        c.finish,
                        FinishReason::Cancelled | FinishReason::Failed | FinishReason::Rejected
                    )
            })
            .count();
        let deadline_hits = self
            .completions
            .iter()
            .filter(|c| c.deadline_hit() == Some(true))
            .count();
        // Requests touched by preemption at least once: finished ones
        // carry the count in their completion; in-flight (resident or
        // paused) ones are counted live so mid-run reports are honest.
        let preempted_requests = self
            .completions
            .iter()
            .filter(|c| c.preemptions > 0)
            .count()
            + self.active.iter().filter(|s| s.preemptions > 0).count()
            + self.paused.len();

        let per_model = self
            .registry
            .iter()
            .map(|(mid, name, _)| {
                let mine: Vec<&&Completion> = finished.iter().filter(|c| c.model == mid).collect();
                let ttft: Vec<f64> = mine
                    .iter()
                    .filter_map(|c| c.ttft_steps().map(|t| t as f64))
                    .collect();
                let e2e: Vec<f64> = mine
                    .iter()
                    .filter_map(|c| c.e2e_steps().map(|e| e as f64))
                    .collect();
                ModelBreakdown {
                    model: mid,
                    name: name.to_string(),
                    completed: mine.len(),
                    evicted: self
                        .completions
                        .iter()
                        .filter(|c| c.model == mid && c.finish == FinishReason::DeadlineExceeded)
                        .count(),
                    generated_tokens: mine.iter().map(|c| c.tokens.len() as u64).sum(),
                    processed_tokens: self.processed_per_model[mid],
                    ttft_steps: Percentiles::of(&ttft),
                    e2e_steps: Percentiles::of(&e2e),
                }
            })
            .collect();

        let per_class = Priority::ALL
            .iter()
            .map(|&priority| {
                let mine: Vec<&Completion> = self
                    .completions
                    .iter()
                    .filter(|c| c.priority == priority)
                    .collect();
                let fin: Vec<&&Completion> = mine
                    .iter()
                    .filter(|c| matches!(c.finish, FinishReason::MaxTokens | FinishReason::Eos))
                    .collect();
                let ttft: Vec<f64> = fin
                    .iter()
                    .filter_map(|c| c.ttft_steps().map(|t| t as f64))
                    .collect();
                let e2e: Vec<f64> = fin
                    .iter()
                    .filter_map(|c| c.e2e_steps().map(|e| e as f64))
                    .collect();
                let queue: Vec<f64> = fin
                    .iter()
                    .filter_map(|c| c.queue_steps().map(|q| q as f64))
                    .collect();
                ClassBreakdown {
                    priority,
                    completed: fin.len(),
                    evicted: mine
                        .iter()
                        .filter(|c| c.finish == FinishReason::DeadlineExceeded)
                        .count(),
                    deadline_total: mine
                        .iter()
                        .filter(|c| {
                            c.deadline_steps.is_some()
                                && !matches!(
                                    c.finish,
                                    FinishReason::Cancelled
                                        | FinishReason::Failed
                                        | FinishReason::Rejected
                                )
                        })
                        .count(),
                    deadline_hits: mine
                        .iter()
                        .filter(|c| c.deadline_hit() == Some(true))
                        .count(),
                    ttft_steps: Percentiles::of(&ttft),
                    e2e_steps: Percentiles::of(&e2e),
                    queue_steps: Percentiles::of(&queue),
                }
            })
            .collect();

        ServeReport {
            policy: policy.name(),
            completed: finished.len(),
            evicted,
            failed: self.total_failed,
            rejected: self.total_rejected,
            backend_faults: self.total_backend_faults,
            quarantine_entries: self.total_quarantine_entries,
            quarantine_recoveries: self.total_quarantine_recoveries,
            cancellations: self.total_cancellations,
            wasted_token_advances: self.total_wasted_advances,
            reclaimed_slot_steps: self.total_reclaimed_slot_steps,
            steps: self.clock,
            generated_tokens: self.total_decode_tokens,
            prefill_tokens: self.total_prefill_tokens,
            deadline_total,
            deadline_hits,
            preemptions: self.total_preemptions,
            resumes: self.total_resumes,
            preempted_requests,
            resume_latency_steps: Percentiles::of(&self.resume_latency),
            ttft_steps: Percentiles::of(&ttft),
            e2e_steps: Percentiles::of(&e2e),
            queue_steps: Percentiles::of(&queue),
            mean_occupancy: self.trace.mean_batch() / self.pool.capacity() as f64,
            budget_deferrals: self.total_budget_deferrals,
            budget_prefill_utilization: self.cfg.token_budget.map(|b| {
                let steps = self.trace.prefill_per_step.len();
                if steps == 0 {
                    0.0
                } else {
                    let fed: u64 = self.trace.prefill_per_step.iter().map(|&p| p as u64).sum();
                    fed as f64 / (steps as u64 * b.max_prefill_tokens_per_step as u64) as f64
                }
            }),
            budget_resident_utilization: self
                .cfg
                .token_budget
                .map(|b| self.peak_resident_tokens as f64 / b.max_total_tokens as f64),
            prefix_hits: self.prefix.as_ref().map_or(0, PrefixCache::hits),
            prefix_misses: self.prefix.as_ref().map_or(0, PrefixCache::misses),
            per_model,
            per_class,
            trace: self.trace.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Edf, Fifo, PriorityClasses, StaticBatching, WeightedFair};
    use lightmamba_model::MambaConfig;

    fn tiny_model() -> MambaModel {
        MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(9)).unwrap()
    }

    fn burst_requests(n: u64, prompt_len: usize, gen_len: usize) -> Vec<GenRequest> {
        (0..n)
            .map(|id| GenRequest::greedy(id, vec![(id % 200) as u32 + 1; prompt_len], gen_len))
            .collect()
    }

    fn sequential_reference(model: &MambaModel, req: &GenRequest) -> Vec<u32> {
        let mut state = model.new_state();
        let mut rng = StdRng::seed_from_u64(req.seed);
        let mut logits = model.prefill(&req.prompt, &mut state).unwrap();
        let mut expect = Vec::new();
        for _ in 0..req.max_new_tokens {
            let t = req.sampler.sample(&logits, &mut rng);
            expect.push(t);
            logits = model.forward_step(t, &mut state).unwrap();
        }
        expect
    }

    #[test]
    fn thread_knob_is_validated_and_reported() {
        let model = tiny_model();
        let cfg = |threads| EngineConfig {
            slots: 2,
            max_steps: 100,
            prefill_chunk: 1,
            threads,
            ..Default::default()
        };
        let err = ServeEngine::new(&model, cfg(0)).map(|_| ()).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
        assert_eq!(
            ServeEngine::new(&model, cfg(1)).unwrap().worker_threads(),
            1
        );
        assert_eq!(
            ServeEngine::new(&model, cfg(4)).unwrap().worker_threads(),
            4
        );
    }

    #[test]
    fn threaded_engine_matches_single_thread_outputs() {
        // The same burst through a 1-thread and a 4-thread engine:
        // every completion's token stream must be bit-identical, because
        // sharding only partitions each step's batch.
        let model = tiny_model();
        let reqs = burst_requests(8, 5, 6);
        let run = |threads: usize| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 4,
                    max_steps: 10_000,
                    prefill_chunk: 2,
                    threads,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(reqs.clone()).unwrap();
            engine.run(&mut Fifo).unwrap();
            let mut done = engine.completions().to_vec();
            done.sort_by_key(|c| c.id);
            done.into_iter().map(|c| c.tokens).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn drains_a_burst_and_matches_sequential_outputs() {
        let model = tiny_model();
        let reqs = burst_requests(6, 4, 5);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 3,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs.clone()).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.completed, 6);
        assert_eq!(report.evicted, 0);

        for req in &reqs {
            let done = engine
                .completions()
                .iter()
                .find(|c| c.id == req.id)
                .unwrap();
            assert_eq!(
                done.tokens,
                sequential_reference(&model, req),
                "request {} diverged",
                req.id
            );
        }
    }

    #[test]
    fn chunked_prefill_is_bit_identical_and_cuts_steps() {
        // The pinned invariant: per-request outputs do not depend on
        // the prefill chunk size — and chunking actually speeds the
        // run up in steps on prompt-heavy work.
        let model = tiny_model();
        let reqs = burst_requests(6, 24, 4);
        let run = |chunk: usize| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 3,
                    max_steps: 10_000,
                    prefill_chunk: chunk,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(reqs.clone()).unwrap();
            let report = engine.run(&mut Fifo).unwrap();
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            (report, out)
        };
        let (r1, out1) = run(1);
        let (r8, out8) = run(8);
        assert_eq!(out1, out8, "outputs depend on prefill chunk");
        for req in &reqs {
            let got = &out8.iter().find(|(id, _)| *id == req.id).unwrap().1;
            assert_eq!(got, &sequential_reference(&model, req));
        }
        assert!(
            r8.steps < r1.steps,
            "chunk 8 took {} steps vs {} with chunk 1",
            r8.steps,
            r1.steps
        );
        // Same total work, fewer steps: the per-step processed counts
        // must sum to the same token total.
        let p1: usize = r1.trace.processed_per_step.iter().sum();
        let p8: usize = r8.trace.processed_per_step.iter().sum();
        assert_eq!(p1, p8);
        assert_eq!(r1.prefill_tokens, r8.prefill_tokens);
        // And chunked steps really do carry more than one token per
        // resident sequence.
        assert!(r8
            .trace
            .processed_per_step
            .iter()
            .zip(&r8.trace.batch_per_step)
            .any(|(&p, &b)| p > b));
    }

    #[test]
    fn continuous_beats_static_on_ttft() {
        let model = tiny_model();
        // Mixed lengths: static batching strands short requests behind
        // long batch-mates and late arrivals behind the whole batch.
        let mut reqs = Vec::new();
        for id in 0..12u64 {
            let gen_len = if id % 3 == 0 { 24 } else { 4 };
            let mut r = GenRequest::greedy(id, vec![3; 4], gen_len);
            r.arrival_step = id; // staggered arrivals
            reqs.push(r);
        }
        let run = |policy: &mut dyn Policy| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 4,
                    max_steps: 10_000,
                    prefill_chunk: 1,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(reqs.clone()).unwrap();
            engine.run(policy).unwrap()
        };
        let cont = run(&mut Fifo);
        let stat = run(&mut StaticBatching);
        assert_eq!(cont.completed, 12);
        assert_eq!(stat.completed, 12);
        assert!(
            cont.ttft_steps.mean < stat.ttft_steps.mean,
            "continuous {:?} vs static {:?}",
            cont.ttft_steps,
            stat.ttft_steps
        );
        assert!(cont.steps <= stat.steps);
    }

    #[test]
    fn outputs_do_not_depend_on_policy() {
        let model = tiny_model();
        let reqs = burst_requests(5, 3, 6);
        let run = |policy: &mut dyn Policy| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 2,
                    max_steps: 10_000,
                    prefill_chunk: 2,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(reqs.clone()).unwrap();
            engine.run(policy).unwrap();
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            out
        };
        let fifo = run(&mut Fifo);
        assert_eq!(fifo, run(&mut StaticBatching));
        assert_eq!(fifo, run(&mut Edf::default()));
        assert_eq!(fifo, run(&mut PriorityClasses::default()));
        assert_eq!(fifo, run(&mut WeightedFair::equal()));
    }

    #[test]
    fn fifo_admission_order_holds() {
        let model = tiny_model();
        let reqs = burst_requests(9, 2, 3);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs).unwrap();
        engine.run(&mut Fifo).unwrap();
        let mut admissions: Vec<(u64, u64)> = engine
            .completions()
            .iter()
            .map(|c| (c.admitted_step.expect("completed implies admitted"), c.id))
            .collect();
        admissions.sort();
        let ids: Vec<u64> = admissions.iter().map(|&(_, id)| id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted, "later requests admitted before earlier ones");
    }

    #[test]
    fn priority_classes_jump_the_queue() {
        let model = tiny_model();
        // One slot, a burst: FIFO would admit in id order; the priority
        // policy admits the interactive stragglers first.
        let reqs: Vec<GenRequest> = (0..6u64)
            .map(|id| {
                let prio = if id >= 4 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                };
                GenRequest::greedy(id, vec![2; 2], 2).with_priority(prio)
            })
            .collect();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs).unwrap();
        let report = engine.run(&mut PriorityClasses::default()).unwrap();
        assert_eq!(report.completed, 6);
        let mut admissions: Vec<(u64, u64)> = engine
            .completions()
            .iter()
            .map(|c| (c.admitted_step.unwrap(), c.id))
            .collect();
        admissions.sort();
        let ids: Vec<u64> = admissions.iter().map(|&(_, id)| id).collect();
        assert_eq!(ids, vec![4, 5, 0, 1, 2, 3]);
        // The report slices by class.
        let interactive = &report.per_class[0];
        assert_eq!(interactive.priority, Priority::Interactive);
        assert_eq!(interactive.completed, 2);
        assert!(
            interactive.queue_steps.mean < report.per_class[2].queue_steps.mean,
            "interactive {:?} vs batch {:?}",
            interactive.queue_steps,
            report.per_class[2].queue_steps
        );
    }

    #[test]
    fn edf_beats_fifo_on_deadline_hits() {
        // The acceptance scenario in miniature: a deadline-free hog
        // arrives first, then tight-deadline requests. FIFO admits in
        // arrival order and lets the deadlines starve; EDF reorders the
        // queue and strictly wins on hit rate — outputs unchanged.
        let model = tiny_model();
        let mut reqs = vec![GenRequest::greedy(0, vec![1; 4], 30)];
        for id in 1..5u64 {
            reqs.push(GenRequest::greedy(id, vec![2; 2], 3).with_deadline(10));
        }
        let run = |policy: &mut dyn Policy| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 2,
                    max_steps: 10_000,
                    prefill_chunk: 1,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(reqs.clone()).unwrap();
            engine.run(policy).unwrap()
        };
        let fifo = run(&mut Fifo);
        let edf = run(&mut Edf::default());
        assert_eq!(fifo.deadline_total, 4);
        assert_eq!(edf.deadline_total, 4);
        assert!(
            edf.deadline_hits > fifo.deadline_hits,
            "edf {}/{} vs fifo {}/{}",
            edf.deadline_hits,
            edf.deadline_total,
            fifo.deadline_hits,
            fifo.deadline_total
        );
        assert!(edf.deadline_hit_rate() > fifo.deadline_hit_rate());
    }

    #[test]
    fn doomed_requests_are_evicted_before_admission() {
        let model = tiny_model();
        // Needs 2 prefill + 9 decode steps but only has a 5-step budget:
        // under EDF it must be dropped at arrival, not at expiry, and
        // never occupy the (free!) slot.
        let doomed = GenRequest::greedy(0, vec![1; 2], 10).with_deadline(5);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 100,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(vec![doomed.clone()]).unwrap();
        let report = engine.run(&mut Edf::default()).unwrap();
        assert_eq!(report.evicted, 1);
        let c = &engine.completions()[0];
        assert_eq!(c.finish, FinishReason::DeadlineExceeded);
        assert_eq!(c.admitted_step, None);
        assert_eq!(c.finished_step, 0, "evicted at arrival, not at expiry");
        // FIFO admits it and burns 5 steps discovering the miss.
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 100,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(vec![doomed]).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(engine.completions()[0].admitted_step, Some(0));
        assert_eq!(engine.completions()[0].finished_step, 5);
    }

    #[test]
    fn a_feasible_deadline_survives_doomed_eviction() {
        let model = tiny_model();
        // 2 prefill + 2 decode steps in a 10-step budget: feasible, and
        // EDF must serve it to completion.
        let req = GenRequest::greedy(0, vec![1; 2], 3).with_deadline(10);
        let mut engine = ServeEngine::new(&model, EngineConfig::default()).unwrap();
        engine.submit(vec![req]).unwrap();
        let report = engine.run(&mut Edf::default()).unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(report.deadline_hits, 1);
    }

    #[test]
    fn wfq_shares_one_pool_by_weight() {
        use crate::backend::FpBackend;
        use crate::registry::ModelRegistry;

        let model = tiny_model();
        let mut reg = ModelRegistry::new();
        reg.register("a", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("b", Box::new(FpBackend::new(&model))).unwrap();

        // Saturation: far more equal-shape work per model than the step
        // budget can finish, so shares reflect policy, not drain order.
        let reqs: Vec<GenRequest> = (0..400u64)
            .map(|id| GenRequest::greedy(id, vec![3; 2], 8).on_model((id % 2) as usize))
            .collect();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig {
                slots: 8,
                max_steps: 150,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs).unwrap();
        let mut wfq = WeightedFair::new(vec![3.0, 1.0]);
        let report = engine.run(&mut wfq).unwrap();
        assert!(engine.has_work(), "pool must stay saturated");
        let a = report.per_model[0].processed_tokens as f64;
        let b = report.per_model[1].processed_tokens as f64;
        let share = a / (a + b);
        assert!(
            (0.65..0.85).contains(&share),
            "weight-3 model took {share:.2} of the pool (want ≈ 0.75)"
        );
    }

    #[test]
    fn invalid_policy_picks_are_ignored() {
        struct Rogue;
        impl Policy for Rogue {
            fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
                // Out-of-range, duplicated, and over-subscribed picks.
                let mut v: Vec<usize> = (0..ctx.waiting.len() + 4).collect();
                v.extend(0..ctx.waiting.len());
                v
            }
            fn name(&self) -> &'static str {
                "rogue"
            }
        }
        let model = tiny_model();
        let reqs = burst_requests(6, 2, 2);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs).unwrap();
        let report = engine.run(&mut Rogue).unwrap();
        // The engine clamps to free slots and unique indices: all six
        // requests complete exactly once.
        assert_eq!(report.completed, 6);
        assert_eq!(report.trace.peak_batch(), 2);
    }

    #[test]
    fn preemptive_priority_pauses_a_low_class_hog_and_resumes_it_bit_identically() {
        let model = tiny_model();
        // One slot: a long batch-class hog holds it, then an
        // interactive request arrives. Non-preemptive priority must
        // wait; preemptive priority pauses the hog, serves the
        // interactive request, then resumes the hog to completion with
        // exactly the tokens an undisturbed run produces.
        let hog = GenRequest::greedy(0, vec![1; 3], 12).with_priority(Priority::Batch);
        let mut urgent = GenRequest::greedy(1, vec![2; 2], 3).with_priority(Priority::Interactive);
        urgent.arrival_step = 5;
        let run = |policy: &mut dyn Policy| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 1,
                    max_steps: 10_000,
                    prefill_chunk: 1,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(vec![hog.clone(), urgent.clone()]).unwrap();
            let report = engine.run(policy).unwrap();
            let done: Vec<Completion> = engine.completions().to_vec();
            (report, done)
        };
        let (plain, plain_done) = run(&mut PriorityClasses::default());
        let (pre, pre_done) = run(&mut PriorityClasses::preemptive());
        assert_eq!(plain.preemptions, 0);
        assert_eq!(pre.preemptions, 1);
        assert_eq!(pre.resumes, 1);
        assert_eq!(pre.preempted_requests, 1);
        assert!(pre.resume_latency_steps.n == 1 && pre.resume_latency_steps.mean > 0.0);

        // Bit-identity: pausing changed *when* the hog ran, not *what*
        // it generated.
        let tokens_of =
            |done: &[Completion], id: u64| done.iter().find(|c| c.id == id).unwrap().tokens.clone();
        assert_eq!(tokens_of(&pre_done, 0), tokens_of(&plain_done, 0));
        assert_eq!(tokens_of(&pre_done, 1), tokens_of(&plain_done, 1));

        // The interactive request's first token no longer waits for the
        // hog to drain.
        let urgent_fin =
            |done: &[Completion]| done.iter().find(|c| c.id == 1).unwrap().finished_step;
        assert!(
            urgent_fin(&pre_done) < urgent_fin(&plain_done),
            "preemption must serve the interactive request earlier ({} vs {})",
            urgent_fin(&pre_done),
            urgent_fin(&plain_done)
        );

        // Timestamp semantics: the hog's completion records its bench
        // time; paused steps count toward e2e but never toward TTFT.
        let hog_done = pre_done.iter().find(|c| c.id == 0).unwrap();
        assert_eq!(hog_done.preemptions, 1);
        assert!(hog_done.paused_steps > 0);
        // The hog had sampled its first token before being paused, so
        // its TTFT is untouched by the pause.
        assert_eq!(hog_done.paused_steps_before_first_token, 0);
        let plain_hog = plain_done.iter().find(|c| c.id == 0).unwrap();
        assert_eq!(hog_done.ttft_steps(), plain_hog.ttft_steps());
        assert!(hog_done.e2e_steps().unwrap() > plain_hog.e2e_steps().unwrap());
    }

    #[test]
    fn preemptive_edf_rescues_a_deadline_from_a_deadline_free_hog() {
        let model = tiny_model();
        // One slot again: a deadline-free hog is resident when a
        // tight-deadline request arrives. Plain EDF dooms the arrival
        // (the hog cannot be displaced); preemptive EDF pauses the hog
        // on the arrival's last feasible step and hits the deadline.
        let hog = GenRequest::greedy(0, vec![1; 3], 30);
        let mut urgent = GenRequest::greedy(1, vec![2; 2], 3).with_deadline(8);
        urgent.arrival_step = 2;
        let run = |policy: &mut dyn Policy| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 1,
                    max_steps: 10_000,
                    prefill_chunk: 1,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(vec![hog.clone(), urgent.clone()]).unwrap();
            engine.run(policy).unwrap()
        };
        let plain = run(&mut Edf::default());
        let pre = run(&mut Edf::preemptive());
        assert_eq!(plain.deadline_hits, 0);
        assert_eq!(pre.deadline_hits, 1);
        assert_eq!(pre.preemptions, 1);
        assert_eq!(pre.completed, 2, "the paused hog still finishes");
    }

    #[test]
    fn invalid_preempt_picks_are_ignored() {
        // A policy returning garbage victim indices (out of range,
        // duplicated) must not crash the engine or lose sequences.
        struct RoguePreempt;
        impl Policy for RoguePreempt {
            fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
                (0..ctx.n_candidates().min(ctx.free_slots)).collect()
            }
            fn preempt(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
                let mut v: Vec<usize> = (0..ctx.residents.len() + 3).collect();
                v.extend(0..ctx.residents.len());
                v
            }
            fn name(&self) -> &'static str {
                "rogue-preempt"
            }
        }
        let model = tiny_model();
        let reqs = burst_requests(5, 2, 3);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs.clone()).unwrap();
        let report = engine.run(&mut RoguePreempt).unwrap();
        // Everything completes exactly once, with the usual outputs —
        // pause/resume churn (all residents, every step) is harmless.
        assert_eq!(report.completed, 5);
        for req in &reqs {
            let done = engine
                .completions()
                .iter()
                .find(|c| c.id == req.id)
                .unwrap();
            assert_eq!(done.tokens, sequential_reference(&model, req));
        }
        // The trace accounts every pause and resume symmetrically.
        assert_eq!(report.preemptions, report.resumes);
        let moves: usize = report.trace.state_moves_per_step.iter().sum();
        assert_eq!(moves as u64, report.preemptions + report.resumes);
    }

    #[test]
    fn deadline_eviction_frees_the_slot() {
        let model = tiny_model();
        let mut hog = GenRequest::greedy(0, vec![1; 4], 500);
        hog.deadline_steps = Some(10);
        let quick = GenRequest::greedy(1, vec![2; 2], 2);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 1_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(vec![hog, quick]).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.completed, 1);
        let evicted = &engine.completions()[0];
        assert_eq!(evicted.id, 0);
        assert_eq!(evicted.finish, FinishReason::DeadlineExceeded);
    }

    #[test]
    fn queued_expiry_is_evicted_without_burning_a_slot_or_step() {
        let model = tiny_model();
        // One hog holds the only slot far past the quick request's
        // deadline; the quick request must expire in the queue, never
        // occupying the slot or joining a batched step.
        let hog = GenRequest::greedy(0, vec![1; 4], 40);
        let mut quick = GenRequest::greedy(1, vec![2; 2], 2);
        quick.deadline_steps = Some(5);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 1_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(vec![hog, quick]).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.completed, 1);
        let evicted = engine
            .completions()
            .iter()
            .find(|c| c.id == 1)
            .expect("quick request recorded");
        assert_eq!(evicted.finish, FinishReason::DeadlineExceeded);
        assert!(evicted.tokens.is_empty());
        assert_eq!(evicted.first_token_step, None);
        assert_eq!(evicted.finished_step, 5);
        // Every executed step ran batch 1 (the hog alone): the expired
        // request never inflated a batch.
        assert!(report.trace.batch_per_step.iter().all(|&b| b <= 1));
    }

    #[test]
    fn eos_token_stops_generation_early() {
        let model = tiny_model();
        // Find the greedy first token, then make it the EOS.
        let mut state = model.new_state();
        let logits = model.prefill(&[5, 6], &mut state).unwrap();
        let eos = MambaModel::argmax(&logits) as u32;
        let mut req = GenRequest::greedy(0, vec![5, 6], 50);
        req.eos_token = Some(eos);
        let mut engine = ServeEngine::new(&model, EngineConfig::default()).unwrap();
        engine.submit(vec![req]).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.completed, 1);
        let c = &engine.completions()[0];
        assert_eq!(c.finish, FinishReason::Eos);
        assert_eq!(c.tokens, vec![eos]);
    }

    #[test]
    fn step_budget_stops_the_run() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 5,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(burst_requests(4, 8, 50)).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.steps, 5);
        assert!(engine.has_work());
    }

    #[test]
    fn multiplexed_outputs_match_single_model_runs() {
        use crate::backend::{FpBackend, W4A4Backend};
        use crate::registry::ModelRegistry;
        use lightmamba_model::eval::StepModel;
        use lightmamba_quant::pipeline::{quantize_model, Method, QuantSpec};

        let model = tiny_model();
        let quantized =
            quantize_model(&model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[]).unwrap();
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model)))
            .unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(quantized.clone())))
            .unwrap();

        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig {
                slots: 3,
                max_steps: 10_000,
                prefill_chunk: 2,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let reqs: Vec<GenRequest> = (0..8u64)
            .map(|id| {
                GenRequest::greedy(id, vec![(id % 200) as u32 + 1; 4], 5)
                    .on_model((id % 2) as usize)
            })
            .collect();
        engine.submit(reqs.clone()).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.completed, 8);
        assert_eq!(report.per_model.len(), 2);
        assert_eq!(report.per_model[0].completed, 4);
        assert_eq!(report.per_model[1].completed, 4);
        // Sub-batches are recorded per model and sum to the step batch;
        // per-model processed tokens sum to the step's token-advances.
        for (sub, &total) in report
            .trace
            .sub_batches_per_step
            .iter()
            .zip(&report.trace.batch_per_step)
        {
            assert_eq!(sub.iter().sum::<usize>(), total);
        }
        for (sub, &total) in report
            .trace
            .sub_processed_per_step
            .iter()
            .zip(&report.trace.processed_per_step)
        {
            assert_eq!(sub.iter().sum::<usize>(), total);
        }

        // Every request's output equals its model's sequential decode,
        // no matter what the other backend's sequences were doing.
        let mut q = quantized;
        for req in &reqs {
            let done = engine
                .completions()
                .iter()
                .find(|c| c.id == req.id)
                .unwrap();
            assert_eq!(done.model, req.model);
            let mut rng = StdRng::seed_from_u64(req.seed);
            let expect = if req.model == 0 {
                sequential_reference(&model, req)
            } else {
                q.reset();
                let mut logits = Vec::new();
                for &t in &req.prompt {
                    logits = q.step(t).unwrap();
                }
                let mut out = Vec::new();
                for _ in 0..req.max_new_tokens {
                    let t = req.sampler.sample(&logits, &mut rng);
                    out.push(t);
                    logits = q.step(t).unwrap();
                }
                out
            };
            assert_eq!(done.tokens, expect, "request {} diverged", req.id);
        }
    }

    #[test]
    fn unknown_model_id_is_rejected_at_submit() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(&model, EngineConfig::default()).unwrap();
        let err = engine
            .submit(vec![GenRequest::greedy(0, vec![1, 2], 3).on_model(5)])
            .unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(_)), "{err:?}");
    }

    #[test]
    fn rejects_empty_prompt_zero_slots_and_zero_chunk() {
        let model = tiny_model();
        assert!(ServeEngine::new(
            &model,
            EngineConfig {
                slots: 0,
                max_steps: 1,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 1,
                prefill_chunk: 0,
                threads: 1,
                ..Default::default()
            }
        )
        .is_err());
        let mut engine = ServeEngine::new(&model, EngineConfig::default()).unwrap();
        assert!(engine
            .submit(vec![GenRequest::greedy(0, vec![], 4)])
            .is_err());
    }

    #[test]
    fn cancelling_a_resident_frees_its_slot_within_one_step() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // The hog holds the only slot; the waiter queues behind it.
        engine
            .submit(vec![
                GenRequest::greedy(0, vec![1, 2], 50),
                GenRequest::greedy(1, vec![3, 4], 3),
            ])
            .unwrap();
        let mut policy = Fifo;
        for _ in 0..5 {
            engine.step(&mut policy).unwrap();
        }
        assert_eq!(engine.active_count(), 1);
        assert_eq!(engine.free_slots(), 0);
        engine.cancel(0);
        engine.step(&mut policy).unwrap();
        // One step later the hog is out and the waiter holds the slot:
        // the freed capacity was re-offered within the same step.
        let hog = engine
            .completions()
            .iter()
            .find(|c| c.id == 0)
            .expect("cancelled hog retires immediately")
            .clone();
        assert_eq!(hog.finish, FinishReason::Cancelled);
        assert!(!hog.tokens.is_empty(), "pre-cancel tokens are kept");
        assert!(hog.tokens.len() < 50);
        assert_eq!(engine.active_count(), 1);
        let report = engine.run(&mut policy).unwrap();
        let waiter = engine
            .completions()
            .iter()
            .find(|c| c.id == 1)
            .expect("waiter runs after the cancel");
        assert_eq!(waiter.finish, FinishReason::MaxTokens);
        assert_eq!(
            waiter.admitted_step,
            Some(hog.finished_step),
            "waiter admitted in the very step the cancel landed"
        );
        assert_eq!(report.cancellations, 1);
        assert_eq!(report.completed, 1);
        assert_eq!(report.evicted, 0, "a cancel is not a deadline eviction");
        assert!(report.wasted_token_advances >= 3);
        assert!(report.reclaimed_slot_steps > 0);
        assert_eq!(report.trace.cancellations_per_step.iter().sum::<usize>(), 1);
        assert!(hog.deadline_hit().is_none());
    }

    #[test]
    fn cancelling_unadmitted_and_paused_requests_also_retires_them() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        // A batch hog that the preemptive policy will pause, an urgent
        // arrival to force the pause, and a waiter that never gets in
        // before its cancel.
        let hog = GenRequest::greedy(0, vec![1; 3], 30).with_priority(Priority::Batch);
        let mut urgent = GenRequest::greedy(1, vec![2; 2], 20).with_priority(Priority::Interactive);
        urgent.arrival_step = 5;
        let waiter = GenRequest::greedy(2, vec![3; 2], 4).with_priority(Priority::Batch);
        engine.submit(vec![hog, waiter, urgent]).unwrap();
        let mut policy = PriorityClasses::preemptive();
        for _ in 0..8 {
            engine.step(&mut policy).unwrap();
        }
        assert_eq!(engine.paused_count(), 1, "the hog was preempted");
        engine.cancel(0); // paused
        engine.cancel(2); // waiting, never admitted
        engine.step(&mut policy).unwrap();
        let by_id = |id: u64| {
            engine
                .completions()
                .iter()
                .find(|c| c.id == id)
                .cloned()
                .unwrap_or_else(|| panic!("request {id} retired"))
        };
        assert_eq!(by_id(0).finish, FinishReason::Cancelled);
        assert_eq!(by_id(2).finish, FinishReason::Cancelled);
        assert!(by_id(2).tokens.is_empty(), "never admitted, no tokens");
        assert_eq!(engine.paused_count(), 0, "paused state is released");
        let report = engine.run(&mut policy).unwrap();
        assert_eq!(report.cancellations, 2);
        assert_eq!(report.completed, 1, "only the urgent request finished");
    }

    #[test]
    fn session_resume_matches_reprefill_and_strictly_beats_its_ttft() {
        let model = tiny_model();
        let p1: Vec<u32> = (1..=12).collect();
        let p2: Vec<u32> = (30..36).collect();
        let cfg = EngineConfig {
            slots: 1,
            max_steps: 10_000,
            prefill_chunk: 1,
            threads: 1,
            ..Default::default()
        };

        // Turn 1 completes into a snapshot; turn 2 resumes it.
        let mut engine = ServeEngine::new(&model, cfg).unwrap();
        engine
            .submit(vec![GenRequest::greedy(0, p1.clone(), 8).with_session(1)])
            .unwrap();
        let mut policy = Fifo;
        engine.run(&mut policy).unwrap();
        let turn1 = engine.completions()[0].clone();
        let (sid, snap) = engine
            .take_session_snapshots()
            .pop()
            .expect("turn 1 parked its state");
        assert_eq!(sid, 1);
        assert_eq!(
            snap.consumed_tokens,
            p1.len() + 8 - 1,
            "everything but the pending token is baked into the state"
        );
        assert_eq!(snap.pending_token, *turn1.tokens.last().unwrap());
        let mut turn2 = GenRequest::greedy(1, p2.clone(), 6).with_session(1);
        turn2.arrival_step = engine.clock();
        engine.submit_with_state(turn2, snap).unwrap();
        engine.run(&mut policy).unwrap();
        let resumed = engine
            .completions()
            .iter()
            .find(|c| c.id == 1)
            .unwrap()
            .clone();

        // Reference: the same turn 2 as a cold request re-prefilling
        // the entire conversation history.
        let mut full_prompt = p1.clone();
        full_prompt.extend_from_slice(&turn1.tokens);
        full_prompt.extend_from_slice(&p2);
        let mut ref_engine = ServeEngine::new(&model, cfg).unwrap();
        ref_engine
            .submit(vec![GenRequest::greedy(1, full_prompt, 6)])
            .unwrap();
        ref_engine.run(&mut policy).unwrap();
        let reprefill = ref_engine.completions()[0].clone();

        // Same generation, bit for bit — the resume is exact.
        assert_eq!(resumed.tokens, reprefill.tokens);
        // The pinned win: TTFT drops by exactly the consumed tokens the
        // resume did not have to re-prefill.
        let resumed_ttft = resumed.ttft_steps().unwrap();
        let reprefill_ttft = reprefill.ttft_steps().unwrap();
        assert!(
            resumed_ttft < reprefill_ttft,
            "resume TTFT {resumed_ttft} must strictly beat re-prefill {reprefill_ttft}"
        );
        assert_eq!(
            reprefill_ttft - resumed_ttft,
            (p1.len() + 8 - 1) as u64,
            "the saved prefill is exactly the snapshot's consumed tokens"
        );
    }

    #[test]
    fn second_turn_timing_uses_its_own_arrival_stamps() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 100_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine
            .submit(vec![GenRequest::greedy(0, vec![1; 4], 4).with_session(9)])
            .unwrap();
        let mut policy = Fifo;
        engine.run(&mut policy).unwrap();
        let turn1_finished = engine.completions()[0].finished_step;
        let (_, snap) = engine.take_session_snapshots().pop().unwrap();
        // The user reads the reply and types: the next turn arrives
        // long after the first finished. Its stamps must all be its
        // own — inheriting turn 1's would make TTFT/queue look 100
        // steps long (or trip the checked_sub debug audits).
        let mut turn2 = GenRequest::greedy(1, vec![5, 6, 7], 4).with_session(9);
        turn2.arrival_step = turn1_finished + 100;
        engine.submit_with_state(turn2, snap).unwrap();
        engine.run(&mut policy).unwrap();
        let c2 = engine
            .completions()
            .iter()
            .find(|c| c.id == 1)
            .unwrap()
            .clone();
        assert_eq!(c2.arrival_step, turn1_finished + 100);
        assert!(c2.admitted_step.unwrap() >= c2.arrival_step);
        assert!(
            c2.queue_steps().unwrap() <= 1,
            "an idle engine admits the turn immediately"
        );
        let ttft = c2.ttft_steps().expect("turn 2 produced tokens");
        assert!(
            ttft <= 5,
            "TTFT is measured from turn 2's own arrival, not turn 1's: {ttft}"
        );
        assert!(c2.e2e_steps().unwrap() < 100);
    }

    #[test]
    fn mismatched_session_state_is_rejected_at_submit() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine
            .submit(vec![GenRequest::greedy(0, vec![1, 2], 3).with_session(4)])
            .unwrap();
        engine.run(&mut Fifo).unwrap();
        let (_, snap) = engine.take_session_snapshots().pop().unwrap();

        // A differently-shaped engine must refuse the snapshot.
        let mut other_cfg = MambaConfig::tiny();
        other_cfg.d_model *= 2;
        let other = MambaModel::synthetic(other_cfg, &mut StdRng::seed_from_u64(1)).unwrap();
        let mut wrong = ServeEngine::new(
            &other,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let err = wrong
            .submit_with_state(GenRequest::greedy(1, vec![3], 2).with_session(4), snap)
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err:?}");
        assert_eq!(
            wrong.pending_resumes(),
            0,
            "rejected resume leaves no state"
        );
    }

    // ---- fault tolerance -------------------------------------------------

    use crate::chaos::{ChaosBackend, FaultKind as ChaosFault, FaultPlan, FaultWindow};
    use crate::resilience::DegradationConfig;

    fn chaos_registry<'m>(model: &'m MambaModel, plan: FaultPlan) -> ModelRegistry<'m> {
        use crate::backend::FpBackend;
        let mut reg = ModelRegistry::new();
        reg.register(
            "chaos-fp",
            Box::new(ChaosBackend::new(Box::new(FpBackend::new(model)), plan)),
        )
        .unwrap();
        reg
    }

    #[test]
    fn a_faulting_backend_is_contained_and_the_healthy_model_completes() {
        use crate::backend::FpBackend;

        let model = tiny_model();
        let mut reg = ModelRegistry::new();
        reg.register("healthy", Box::new(FpBackend::new(&model)))
            .unwrap();
        let plan = FaultPlan::from_windows(vec![FaultWindow {
            start: 1,
            len: 2,
            kind: ChaosFault::StepError,
        }]);
        reg.register(
            "flaky",
            Box::new(ChaosBackend::new(Box::new(FpBackend::new(&model)), plan)),
        )
        .unwrap();

        // Even ids run on the healthy model, odd ids on the flaky one;
        // all four are resident when the fault window opens.
        let reqs: Vec<GenRequest> = (0..4u64)
            .map(|id| GenRequest::greedy(id, vec![id as u32 + 1; 2], 4).on_model((id % 2) as usize))
            .collect();
        let expect: Vec<Vec<u32>> = reqs
            .iter()
            .map(|r| sequential_reference(&model, r))
            .collect();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig {
                slots: 4,
                max_steps: 10_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs).unwrap();
        let report = engine.run(&mut Fifo).unwrap();

        // The fault stayed inside its domain: the healthy model's
        // requests finished bit-identically, the flaky one's residents
        // were retired as Failed, and the engine itself survived.
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 2);
        assert!(report.backend_faults >= 1);
        for c in engine.completions() {
            match c.finish {
                FinishReason::MaxTokens | FinishReason::Eos => {
                    assert_eq!(c.tokens, expect[c.id as usize], "healthy output unchanged");
                }
                FinishReason::Failed => {
                    assert_eq!(c.id % 2, 1, "only the flaky model's requests failed");
                }
                other => panic!("unexpected finish {other:?}"),
            }
        }
        // Every slot the failed residents held was reclaimed.
        assert_eq!(engine.free_slots(), 4);
        assert!(!engine.has_work());
        assert_eq!(report.availability(), Some(0.5));
    }

    #[test]
    fn quarantine_backs_off_then_readmits_through_a_canary() {
        let model = tiny_model();
        let plan = FaultPlan::from_windows(vec![FaultWindow {
            start: 2,
            len: 2,
            kind: ChaosFault::StepError,
        }]);
        let reqs: Vec<GenRequest> = (0..4u64)
            .map(|id| GenRequest::greedy(id, vec![id as u32 + 1; 2], 3))
            .collect();
        let expect: Vec<Vec<u32>> = reqs
            .iter()
            .map(|r| sequential_reference(&model, r))
            .collect();
        let mut engine = ServeEngine::with_registry(
            chaos_registry(&model, plan),
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(reqs).unwrap();
        let report = engine.run(&mut Fifo).unwrap();

        // The step-2 fault kills the two residents and quarantines the
        // backend; the backoff window (4 steps) outlives the fault
        // window, the half-open canary advances cleanly, and the two
        // waiting requests then complete bit-identically.
        assert_eq!(report.failed, 2);
        assert_eq!(report.completed, 2);
        assert_eq!(engine.quarantine_transitions(), (1, 1));
        assert_eq!(engine.backend_health(0), Some(BackendHealth::Healthy));
        for c in engine.completions() {
            if matches!(c.finish, FinishReason::MaxTokens | FinishReason::Eos) {
                assert_eq!(c.tokens, expect[c.id as usize], "survivor is bit-identical");
            }
        }
        assert_eq!(engine.free_slots(), 2);
    }

    #[test]
    fn a_bounded_queue_sheds_overload_with_a_retry_hint() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.set_resilience(ResilienceConfig {
            queue_limit: Some(2),
            ..ResilienceConfig::default()
        });
        engine.submit(burst_requests(6, 1, 2)).unwrap();
        let report = engine.run(&mut Fifo).unwrap();

        // The first two arrivals fill the bounded queue; the remaining
        // four are shed at intake with a resubmission hint.
        assert_eq!(report.rejected, 4);
        assert_eq!(report.completed, 2);
        assert!((report.availability().unwrap() - 2.0 / 6.0).abs() < 1e-12);
        for c in engine.completions() {
            if c.finish == FinishReason::Rejected {
                assert!(c.tokens.is_empty(), "shed requests never ran");
                assert!(c.retry_after_steps.unwrap() >= 1);
            } else {
                assert!(c.retry_after_steps.is_none());
            }
        }
    }

    #[test]
    fn sustained_overload_walks_the_degradation_ladder() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.set_resilience(ResilienceConfig {
            degradation: Some(DegradationConfig {
                queue_slo: 2,
                breach_steps: 2,
                recover_steps: 2,
            }),
            ..ResilienceConfig::default()
        });
        // One slot, ten long requests: the queue sits far over the SLO.
        engine.submit(burst_requests(10, 1, 40)).unwrap();
        assert_eq!(engine.degradation_level(), 0);
        assert_eq!(engine.effective_prefill_chunk(), 4);
        for _ in 0..4 {
            engine.step(&mut Fifo).unwrap();
        }
        // Two breached steps per rung: level 2 after four steps.
        assert_eq!(engine.degradation_level(), 2);
        assert_eq!(engine.effective_prefill_chunk(), 2, "L1 halves the chunk");

        // At level 2, Batch-class arrivals are shed; Interactive ones
        // still get in.
        let shed = GenRequest::greedy(100, vec![1], 2).with_priority(Priority::Batch);
        let kept = GenRequest::greedy(101, vec![1], 2).with_priority(Priority::Interactive);
        engine.submit(vec![shed, kept]).unwrap();
        engine.step(&mut Fifo).unwrap();
        assert_eq!(engine.rejected_count(), 1);
        assert!(engine
            .completions()
            .iter()
            .any(|c| c.id == 100 && c.finish == FinishReason::Rejected));

        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.completed, 11, "everything admitted still finishes");
        assert_eq!(report.rejected, 1);
    }

    #[test]
    fn fault_free_runs_are_bit_identical_with_the_chaos_layer_armed() {
        let model = tiny_model();
        let reqs = burst_requests(5, 3, 4);

        let mut plain = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 2,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        plain.submit(reqs.clone()).unwrap();
        let plain_report = plain.run(&mut Fifo).unwrap();

        // Same engine, but every call routed through a ChaosBackend
        // with an empty plan and the resilience layer armed.
        let mut wrapped = ServeEngine::with_registry(
            chaos_registry(&model, FaultPlan::none()),
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 2,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        wrapped.set_resilience(ResilienceConfig::default());
        wrapped.submit(reqs).unwrap();
        let wrapped_report = wrapped.run(&mut Fifo).unwrap();

        assert_eq!(plain_report.completed, wrapped_report.completed);
        assert_eq!(wrapped_report.backend_faults, 0);
        let tokens = |e: &ServeEngine<'_>| {
            let mut v: Vec<(RequestId, Vec<u32>)> = e
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        assert_eq!(
            tokens(&plain),
            tokens(&wrapped),
            "outputs are bit-identical"
        );
    }

    #[test]
    fn quarantine_strictly_beats_no_mitigation_on_the_same_fault_schedule() {
        let model = tiny_model();
        let plan = FaultPlan::seeded(7, 300, 0.25);
        assert!(!plan.is_empty());

        let run = |resilience: ResilienceConfig| {
            let mut engine = ServeEngine::with_registry(
                chaos_registry(&model, plan.clone()),
                EngineConfig {
                    slots: 4,
                    max_steps: 300,
                    prefill_chunk: 4,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.set_resilience(resilience);
            let reqs: Vec<GenRequest> = (0..30u64)
                .map(|id| {
                    let mut r = GenRequest::greedy(id, vec![(id % 7) as u32 + 1; 2], 4);
                    r.arrival_step = id * 3;
                    r
                })
                .collect();
            engine.submit(reqs).unwrap();
            engine.run(&mut Fifo).unwrap()
        };

        let mitigated = run(ResilienceConfig::default());
        let exposed = run(ResilienceConfig::none());

        // Identical fault schedule, identical workload: backing off the
        // faulting backend converts failures into completions. This pin
        // is the PR's headline claim — do not weaken it to >=.
        assert!(
            mitigated.completed > exposed.completed,
            "quarantine goodput {} must strictly beat no-mitigation {}",
            mitigated.completed,
            exposed.completed
        );
        assert!(
            mitigated.failed < exposed.failed,
            "quarantine failures {} must stay under no-mitigation {}",
            mitigated.failed,
            exposed.failed
        );
        assert!(mitigated.availability().unwrap() > exposed.availability().unwrap());
        assert!(mitigated.quarantine_entries >= 1);
    }

    #[test]
    fn an_injected_panic_is_contained_and_quarantined() {
        let model = tiny_model();
        let plan = FaultPlan::from_windows(vec![FaultWindow {
            start: 1,
            len: 1,
            kind: ChaosFault::Panic,
        }]);
        let mut engine = ServeEngine::with_registry(
            chaos_registry(&model, plan),
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(burst_requests(3, 2, 3)).unwrap();
        let report = engine.run(&mut Fifo).unwrap();

        // The panic unwound out of the backend, was caught at the
        // domain boundary, and the engine went on to serve the queue.
        assert_eq!(report.failed, 2);
        assert_eq!(report.completed, 1);
        assert!(report.backend_faults >= 1);
        assert_eq!(engine.free_slots(), 2);
        assert!(!engine.has_work());
    }

    #[test]
    fn prefix_cache_hit_skips_prefill_and_pins_the_ttft_win() {
        let model = tiny_model();
        let prefix: Vec<u32> = (1..=10).collect();
        let k = prefix.len();
        let mut warm_prompt = prefix.clone();
        warm_prompt.extend_from_slice(&[40, 41, 42]);
        let mut hot_prompt = prefix.clone();
        hot_prompt.extend_from_slice(&[50, 51, 52, 53]);
        let cfg = EngineConfig {
            slots: 1,
            max_steps: 10_000,
            prefill_chunk: 1,
            threads: 1,
            prefix_cache: Some(4),
            ..Default::default()
        };

        // Warm the cache: the first bearer of the prefix misses and
        // harvests the post-prefix state at the boundary.
        let mut engine = ServeEngine::new(&model, cfg).unwrap();
        engine
            .submit(vec![
                GenRequest::greedy(0, warm_prompt, 4).with_shared_prefix(k)
            ])
            .unwrap();
        let mut policy = Fifo;
        engine.run(&mut policy).unwrap();
        {
            let cache = engine.prefix_cache().unwrap();
            assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        }

        // The measured request arrives after the warmup drained, hits,
        // and restores the snapshot instead of re-prefilling the prefix.
        let mut hot = GenRequest::greedy(1, hot_prompt.clone(), 6).with_shared_prefix(k);
        hot.arrival_step = engine.clock();
        engine.submit(vec![hot]).unwrap();
        let report = engine.run(&mut policy).unwrap();
        assert_eq!(engine.prefix_cache().unwrap().hits(), 1);
        let hot_done = engine
            .completions()
            .iter()
            .find(|c| c.id == 1)
            .unwrap()
            .clone();

        // Cold reference: the identical request through a cache-less
        // engine re-prefills the whole prompt.
        let mut cold_engine = ServeEngine::new(
            &model,
            EngineConfig {
                prefix_cache: None,
                ..cfg
            },
        )
        .unwrap();
        cold_engine
            .submit(vec![
                GenRequest::greedy(1, hot_prompt, 6).with_shared_prefix(k)
            ])
            .unwrap();
        cold_engine.run(&mut policy).unwrap();
        let cold = cold_engine.completions()[0].clone();

        // The restored state is exact: decode is bit-identical.
        assert_eq!(hot_done.tokens, cold.tokens);
        // The pinned win: at chunk 1 the TTFT drops by exactly the k
        // prefill steps the restore skipped (the state move itself is
        // priced in accelerator seconds, not engine steps — see the
        // accel_cost test pinning `k*step_seconds(1) - state_move`).
        let hot_ttft = hot_done.ttft_steps().unwrap();
        let cold_ttft = cold.ttft_steps().unwrap();
        assert!(
            hot_ttft < cold_ttft,
            "cache-hit TTFT {hot_ttft} must strictly beat re-prefill {cold_ttft}"
        );
        assert_eq!(
            cold_ttft - hot_ttft,
            k as u64,
            "the win is exactly the skipped prefill steps"
        );
        // State accounting across both cached runs: one harvest save
        // plus one hit restore, each a fixed-size state move.
        let moves: usize = report.trace.state_moves_per_step.iter().sum();
        assert_eq!(moves, 2, "one harvest save + one hit restore");
        assert_eq!(report.prefix_hits, 1);
        assert_eq!(report.prefix_misses, 1);
    }

    #[test]
    fn prefix_markers_are_inert_with_the_cache_off_and_exact_with_it_on() {
        let model = tiny_model();
        let plain = burst_requests(6, 8, 5);
        let marked: Vec<GenRequest> = plain
            .iter()
            .cloned()
            .map(|r| r.with_shared_prefix(4))
            .collect();
        let run = |reqs: Vec<GenRequest>, cache: Option<usize>| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 3,
                    max_steps: 10_000,
                    prefill_chunk: 2,
                    threads: 1,
                    prefix_cache: cache,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(reqs).unwrap();
            let report = engine.run(&mut Fifo).unwrap();
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            (report.steps, out)
        };
        // With the cache off, shared-prefix markers change nothing:
        // same outputs, same step count, token for token.
        let baseline = run(plain, None);
        assert_eq!(run(marked.clone(), None), baseline);
        // With the cache on, outputs stay bit-identical — harvests and
        // restores never alter what a request generates.
        let (_, out_on) = run(marked, Some(8));
        assert_eq!(out_on, baseline.1);
    }

    #[test]
    fn out_of_range_prefix_markers_never_touch_the_cache() {
        let model = tiny_model();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                prefix_cache: Some(4),
                ..Default::default()
            },
        )
        .unwrap();
        // k == prompt.len() would leave nothing to decode from; k == 0
        // is an empty prefix. Both are ignored, not errors.
        let whole = GenRequest::greedy(0, vec![7; 5], 4).with_shared_prefix(5);
        let zero = GenRequest::greedy(1, vec![8; 5], 4).with_shared_prefix(0);
        engine.submit(vec![whole.clone(), zero.clone()]).unwrap();
        engine.run(&mut Fifo).unwrap();
        let cache = engine.prefix_cache().unwrap();
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 0, 0));
        for req in [&whole, &zero] {
            let done = engine
                .completions()
                .iter()
                .find(|c| c.id == req.id)
                .unwrap();
            assert_eq!(done.tokens, sequential_reference(&model, req));
        }
    }

    #[test]
    fn harvest_survives_preemption_and_later_requests_hit() {
        let model = tiny_model();
        let prefix: Vec<u32> = (10..22).collect();
        let k = prefix.len();
        let mut hog_prompt = prefix.clone();
        hog_prompt.extend_from_slice(&[1, 2]);
        let hog = GenRequest::greedy(0, hog_prompt.clone(), 6)
            .with_priority(Priority::Batch)
            .with_shared_prefix(k);
        // Arrives mid-prefill of the hog, well before the prefix
        // boundary: the pause must carry the pending harvest marker.
        let mut urgent = GenRequest::greedy(1, vec![90; 2], 3).with_priority(Priority::Interactive);
        urgent.arrival_step = 3;
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 10_000,
                prefill_chunk: 1,
                threads: 1,
                prefix_cache: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(vec![hog.clone(), urgent]).unwrap();
        let mut policy = PriorityClasses::preemptive();
        let report = engine.run(&mut policy).unwrap();
        assert!(report.preemptions >= 1, "the hog was never paused");
        assert_eq!(
            engine.prefix_cache().unwrap().len(),
            1,
            "the resumed hog still harvested its prefix"
        );
        let hog_done = engine
            .completions()
            .iter()
            .find(|c| c.id == 0)
            .unwrap()
            .clone();
        assert_eq!(hog_done.tokens, sequential_reference(&model, &hog));

        // A later bearer of the same prefix restores instead of
        // prefilling — and still decodes bit-identically.
        let mut third_prompt = prefix.clone();
        third_prompt.extend_from_slice(&[5, 6, 7]);
        let mut third = GenRequest::greedy(2, third_prompt, 4).with_shared_prefix(k);
        third.arrival_step = engine.clock();
        engine.submit(vec![third.clone()]).unwrap();
        engine.run(&mut policy).unwrap();
        assert_eq!(engine.prefix_cache().unwrap().hits(), 1);
        let done = engine
            .completions()
            .iter()
            .find(|c| c.id == 2)
            .unwrap()
            .clone();
        assert_eq!(done.tokens, sequential_reference(&model, &third));
    }

    #[test]
    fn token_budget_defers_but_every_request_completes() {
        let model = tiny_model();
        let budget = TokenBudget::new(6, 30).unwrap();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 4,
                max_steps: 100_000,
                prefill_chunk: 4,
                threads: 1,
                token_budget: Some(budget),
                ..Default::default()
            },
        )
        .unwrap();
        // Footprint 6+5 = 11 tokens each: the 30-token residency cap
        // holds two at a time even though four slots are free, and the
        // 6-token prefill cap admits at most one fresh 4-token chunk
        // alongside an in-flight prefill.
        engine.submit(burst_requests(8, 6, 5)).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.completed, 8, "deferral is never starvation");
        assert!(report.budget_deferrals > 0, "the caps never bound");
        for (t, &fed) in report.trace.prefill_per_step.iter().enumerate() {
            assert!(fed <= 6, "step {t} fed {fed} prefill tokens past the cap");
        }
        for (t, &resident) in report.trace.resident_tokens_per_step.iter().enumerate() {
            assert!(resident <= 30, "step {t} held {resident} resident tokens");
        }
        assert_eq!(
            report.budget_deferrals,
            report
                .trace
                .budget_deferred_per_step
                .iter()
                .map(|&d| d as u64)
                .sum::<u64>()
        );
        assert!(engine.peak_resident_tokens() <= 30);
        let prefill_util = report.budget_prefill_utilization.unwrap();
        assert!(prefill_util > 0.0 && prefill_util <= 1.0);
        let resident_util = report.budget_resident_utilization.unwrap();
        assert!(resident_util > 0.0 && resident_util <= 1.0);
    }

    #[test]
    fn budget_valve_admits_an_oversized_request_alone() {
        let model = tiny_model();
        // Footprint 10+4 = 14 > 8 and first chunk 4 > 2: no cap ever
        // fits this request, so without the liveness valve it would
        // wait forever.
        let budget = TokenBudget::new(2, 8).unwrap();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 2,
                max_steps: 100_000,
                prefill_chunk: 4,
                threads: 1,
                token_budget: Some(budget),
                ..Default::default()
            },
        )
        .unwrap();
        let req = GenRequest::greedy(0, vec![3; 10], 4);
        engine.submit(vec![req.clone()]).unwrap();
        let report = engine.run(&mut Fifo).unwrap();
        assert_eq!(report.completed, 1);
        assert_eq!(
            engine.completions()[0].tokens,
            sequential_reference(&model, &req)
        );
    }

    #[test]
    fn token_budget_is_inert_when_generous() {
        // A budget wide enough for the whole workload admits exactly
        // what the unbudgeted engine admits: same outputs, same steps,
        // zero deferrals.
        let model = tiny_model();
        let reqs = burst_requests(6, 5, 4);
        let run = |budget: Option<TokenBudget>| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots: 3,
                    max_steps: 10_000,
                    prefill_chunk: 2,
                    threads: 1,
                    token_budget: budget,
                    ..Default::default()
                },
            )
            .unwrap();
            engine.submit(reqs.clone()).unwrap();
            let report = engine.run(&mut Fifo).unwrap();
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            (report.steps, report.budget_deferrals, out)
        };
        let (steps_off, _, out_off) = run(None);
        let generous = TokenBudget::new(10_000, 100_000).unwrap();
        let (steps_on, deferrals, out_on) = run(Some(generous));
        assert_eq!(deferrals, 0);
        assert_eq!(steps_on, steps_off);
        assert_eq!(out_on, out_off);
    }
}
