//! Error type of the serving subsystem.

use lightmamba_model::ModelError;
use lightmamba_quant::QuantError;

/// Errors produced by the serving engine.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying model rejected a step.
    Model(ModelError),
    /// The engine was configured inconsistently.
    InvalidConfig(String),
    /// A request or lookup named a model the registry does not hold.
    UnknownModel(String),
    /// A backend faulted mid-step: an error return or a caught panic
    /// from one model's batched advance. The engine *contains* these
    /// per fault domain (retiring the domain's residents as
    /// [`crate::request::FinishReason::Failed`] and quarantining the
    /// backend) rather than propagating them out of
    /// [`crate::engine::ServeEngine::step`]; the variant exists so
    /// fault injectors and backends have a typed way to signal one.
    BackendFault {
        /// Registered name of the faulting backend.
        model: String,
        /// Error or panic payload description.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model: {name}"),
            ServeError::BackendFault { model, message } => {
                write!(f, "backend fault in model '{model}': {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            ServeError::InvalidConfig(_)
            | ServeError::UnknownModel(_)
            | ServeError::BackendFault { .. } => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

impl From<QuantError> for ServeError {
    fn from(e: QuantError) -> Self {
        match e {
            QuantError::Model(m) => ServeError::Model(m),
            other => ServeError::InvalidConfig(format!("quantized backend: {other}")),
        }
    }
}
