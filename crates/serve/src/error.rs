//! Error type of the serving subsystem.

use lightmamba_model::ModelError;
use lightmamba_quant::QuantError;

/// Errors produced by the serving engine.
#[derive(Debug)]
pub enum ServeError {
    /// The underlying model rejected a step.
    Model(ModelError),
    /// The engine was configured inconsistently.
    InvalidConfig(String),
    /// A request or lookup named a model the registry does not hold.
    UnknownModel(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::UnknownModel(name) => write!(f, "unknown model: {name}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            ServeError::InvalidConfig(_) | ServeError::UnknownModel(_) => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(e: ModelError) -> Self {
        ServeError::Model(e)
    }
}

impl From<QuantError> for ServeError {
    fn from(e: QuantError) -> Self {
        match e {
            QuantError::Model(m) => ServeError::Model(m),
            other => ServeError::InvalidConfig(format!("quantized backend: {other}")),
        }
    }
}
