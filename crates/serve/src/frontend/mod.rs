//! The async streaming serving frontend: the boundary between clients
//! and the engine's virtual-time loop.
//!
//! [`run_frontend`] moves a [`ServeEngine`] onto a dedicated thread and
//! hands the caller a cloneable [`FrontendHandle`]. Each
//! [`FrontendHandle::submit`] enqueues a [`crate::request::GenRequest`]
//! over the intake channel and returns a [`TokenStream`] — a bounded
//! per-request channel delivering [`StreamEvent`]s as the engine steps:
//! `Queued` at intake, `Started` at admission, one `Token` per sampled
//! token, then exactly one terminal `Done` / `Cancelled` / `Expired` /
//! `Failed` / `Rejected`.
//! This mirrors TGI-style server-sent token streaming, with the engine
//! thread standing in for the HTTP task.
//!
//! Cancellation is disconnect-shaped: dropping a [`TokenStream`] (or
//! calling [`TokenStream::cancel`]) sends a cancel over the intake, and
//! the engine evicts the request at the top of its next step — a
//! cancelled resident frees its slot within one step and the capacity
//! is re-offered to admission in that same step. The work already spent
//! is surfaced in [`crate::metrics::ServeReport`] (`cancellations`,
//! `wasted_token_advances`, `reclaimed_slot_steps`) and priced by the
//! cost models as `wasted_work_s`.
//!
//! Multi-turn chat rides the same machinery: a request tagged with
//! [`crate::request::GenRequest::with_session`] retires into a
//! [`crate::engine::SessionSnapshot`] that the frontend parks in a
//! capacity-bounded
//! LRU [`SessionStore`]. The session's next turn consumes the snapshot
//! ([`ServeEngine::submit_with_state`]): one fixed-size state restore —
//! priced as a single state-transfer DMA — replaces re-prefilling the
//! whole conversation, which is the serving payoff of Mamba2's
//! constant-size state (no KV cache to rebuild or spill).
//!
//! Backpressure: each stream's channel holds
//! [`FrontendConfig::stream_capacity`] undelivered events, and the
//! engine thread *blocks* on a full stream rather than dropping tokens.
//! A client that neither reads nor drops its stream therefore stalls
//! the whole engine — drop the stream to disconnect cleanly.

mod session;
mod stream;

pub use session::SessionStore;
pub use stream::{FrontendHandle, StreamEvent, TokenStream};

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, SyncSender, TryRecvError};

use crate::engine::{ServeEngine, StepEvent};
use crate::error::ServeError;
use crate::metrics::ServeReport;
use crate::observe::{EngineObs, ObsConfig};
use crate::request::{Completion, FinishReason, RequestId};
use crate::scheduler::Policy;
use stream::ClientMsg;

/// Limits of one [`run_frontend`] call.
#[derive(Debug, Clone, Copy)]
pub struct FrontendConfig {
    /// Undelivered events each [`TokenStream`] buffers before the
    /// engine thread blocks on it (must be at least 1).
    pub stream_capacity: usize,
    /// Most recently used session states the [`SessionStore`] parks
    /// between turns; older sessions fall back to re-prefilling.
    pub session_capacity: usize,
    /// When set, the engine thread runs with observability enabled
    /// ([`ServeEngine::enable_obs`]) and the finished [`EngineObs`] —
    /// metrics, spans, flight recorder — comes back in
    /// [`FrontendRun::obs`].
    pub obs: Option<ObsConfig>,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            stream_capacity: 16,
            session_capacity: 64,
            obs: None,
        }
    }
}

/// What a finished [`run_frontend`] call observed, alongside the
/// client closure's own return value.
#[derive(Debug)]
pub struct FrontendRun {
    /// The engine's run report (cancellations, wasted/reclaimed work,
    /// latency percentiles — everything a closed-loop run reports).
    pub report: ServeReport,
    /// Every completion record, including cancelled and expired ones.
    pub completions: Vec<Completion>,
    /// Session states still parked when the frontend shut down.
    pub sessions_stored: usize,
    /// Turns that resumed a parked session state (one state-transfer
    /// DMA each instead of a full-history re-prefill).
    pub session_resumes: u64,
    /// Session-tagged turns whose state was not parked (first turns,
    /// and sessions evicted by LRU pressure) — served from an empty
    /// state.
    pub session_misses: u64,
    /// Sessions the store evicted under LRU pressure.
    pub session_evictions: u64,
    /// Admissions that restored a cached shared-prefix state (see
    /// [`crate::prefix::PrefixCache`]); 0 with the cache off.
    pub prefix_hits: u64,
    /// Shared-prefix admissions that found no cached state; 0 with the
    /// cache off.
    pub prefix_misses: u64,
    /// The observability state accumulated by the engine thread, when
    /// [`FrontendConfig::obs`] was set (or the caller enabled it on the
    /// engine before handing it over): render with
    /// [`EngineObs::exposition`] / [`EngineObs::chrome_trace`] /
    /// [`EngineObs::flight_dump`].
    pub obs: Option<Box<EngineObs>>,
}

/// Runs `engine` on a dedicated thread while `client` drives it
/// through a [`FrontendHandle`] from this one. Returns once `client`
/// has returned *and* the engine has drained: the intake closes when
/// the last handle drops (the `client` closure owns the first; clones
/// count), after which the engine finishes its in-flight work and
/// reports.
///
/// The engine thread stamps each request's arrival at the step it
/// picks the submission up, steps only while there is work (idle waits
/// block on the intake instead of spinning), and stops at the engine's
/// `max_steps` budget even if streams are still open — their readers
/// then see a synthesized terminal [`StreamEvent::Failed`] (with
/// `step: None`) once the engine thread is gone.
///
/// # Errors
///
/// Propagates engine step errors. Panics in `client` propagate after
/// the engine thread is shut down; panics on the engine thread
/// propagate after `client` returns.
///
/// # Example
///
/// ```
/// use lightmamba_model::{MambaConfig, MambaModel};
/// use lightmamba_serve::engine::{EngineConfig, ServeEngine};
/// use lightmamba_serve::frontend::{run_frontend, FrontendConfig, StreamEvent};
/// use lightmamba_serve::request::GenRequest;
/// use lightmamba_serve::scheduler::Fifo;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), lightmamba_serve::ServeError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = MambaModel::synthetic(MambaConfig::tiny(), &mut rng)
///     .map_err(lightmamba_serve::ServeError::from)?;
/// let engine = ServeEngine::new(
///     &model,
///     EngineConfig { slots: 2, max_steps: 10_000, prefill_chunk: 4, threads: 1, ..Default::default() },
/// )?;
/// let (tokens, run) = run_frontend(
///     engine,
///     Box::new(Fifo),
///     FrontendConfig::default(),
///     |handle| {
///         let mut stream = handle.submit(GenRequest::greedy(0, vec![1, 2, 3], 4))?;
///         let mut tokens = Vec::new();
///         while let Some(ev) = stream.recv() {
///             if let StreamEvent::Token { token, .. } = ev {
///                 tokens.push(token);
///             }
///         }
///         Ok::<_, lightmamba_serve::ServeError>(tokens)
///     },
/// )?;
/// assert_eq!(tokens?.len(), 4);
/// assert_eq!(run.report.completed, 1);
/// # Ok(())
/// # }
/// ```
pub fn run_frontend<R>(
    mut engine: ServeEngine<'_>,
    mut policy: Box<dyn Policy>,
    cfg: FrontendConfig,
    client: impl FnOnce(FrontendHandle) -> R,
) -> Result<(R, FrontendRun), ServeError> {
    if cfg.stream_capacity == 0 {
        return Err(ServeError::InvalidConfig(
            "stream_capacity must be at least 1".into(),
        ));
    }
    let (intake_tx, intake_rx) = channel::<ClientMsg>();
    let handle = FrontendHandle::new(intake_tx, engine.registry().len(), cfg.stream_capacity);
    engine.enable_events();
    if let Some(obs_cfg) = cfg.obs {
        engine.enable_obs(obs_cfg);
    }

    std::thread::scope(|scope| {
        let engine_thread =
            scope.spawn(move || engine_loop(&mut engine, policy.as_mut(), cfg, &intake_rx));
        let client_result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| client(handle)));
        // The client closure owned the last intake sender (or its
        // panic dropped it), so the engine thread drains and exits.
        let run = match engine_thread.join() {
            Ok(run) => run,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        match client_result {
            Ok(r) => Ok((r, run?)),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// The engine thread: drain intake, step, fan events out to streams.
fn engine_loop(
    engine: &mut ServeEngine<'_>,
    policy: &mut dyn Policy,
    cfg: FrontendConfig,
    intake: &Receiver<ClientMsg>,
) -> Result<FrontendRun, ServeError> {
    let max_steps = engine.config().max_steps;
    let mut store = SessionStore::new(cfg.session_capacity);
    let mut streams: HashMap<RequestId, SyncSender<StreamEvent>> = HashMap::new();
    let mut delivered = 0usize; // cursor into engine.completions()
    let mut session_resumes = 0u64;
    let mut session_misses = 0u64;
    let mut closed = false;

    loop {
        // Drain every queued client message without blocking…
        loop {
            match intake.try_recv() {
                Ok(msg) => handle_msg(
                    engine,
                    &mut store,
                    &mut streams,
                    &mut session_resumes,
                    &mut session_misses,
                    msg,
                )?,
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    closed = true;
                    break;
                }
            }
        }
        // …and when idle, block on the intake instead of spinning:
        // virtual time only advances while requests are in flight.
        if !engine.has_work() {
            if closed {
                break;
            }
            match intake.recv() {
                Ok(msg) => {
                    handle_msg(
                        engine,
                        &mut store,
                        &mut streams,
                        &mut session_resumes,
                        &mut session_misses,
                        msg,
                    )?;
                    continue; // drain any burst before stepping
                }
                Err(_) => break,
            }
        }
        if engine.clock() >= max_steps {
            break;
        }

        engine.step(policy)?;

        for ev in engine.take_events() {
            let (id, out) = match ev {
                StepEvent::Started { id, step } => (id, StreamEvent::Started { step }),
                StepEvent::Token { id, token, step } => (id, StreamEvent::Token { token, step }),
            };
            if let Some(tx) = streams.get(&id) {
                // A full stream blocks here (documented backpressure);
                // a closed one means the client disconnected between
                // our send and its Drop-cancel reaching the intake.
                if tx.send(out).is_err() {
                    streams.remove(&id);
                    engine.cancel(id);
                }
            }
        }
        let completions = engine.completions();
        for c in &completions[delivered..] {
            let out = match c.finish {
                FinishReason::Cancelled => StreamEvent::Cancelled {
                    step: c.finished_step,
                },
                FinishReason::DeadlineExceeded => StreamEvent::Expired {
                    step: c.finished_step,
                },
                FinishReason::Failed => StreamEvent::Failed {
                    step: Some(c.finished_step),
                },
                FinishReason::Rejected => StreamEvent::Rejected {
                    step: c.finished_step,
                    retry_after_steps: c.retry_after_steps.unwrap_or(1),
                },
                _ => StreamEvent::Done(Box::new(c.clone())),
            };
            if let Some(tx) = streams.remove(&c.id) {
                let _ = tx.send(out);
            }
        }
        delivered = completions.len();
        for (sid, snap) in engine.take_session_snapshots() {
            store.insert(sid, snap);
        }
    }

    let report = engine.report(policy);
    let (prefix_hits, prefix_misses) = (report.prefix_hits, report.prefix_misses);
    Ok(FrontendRun {
        report,
        completions: engine.completions().to_vec(),
        sessions_stored: store.len(),
        session_resumes,
        session_misses,
        session_evictions: store.evictions(),
        prefix_hits,
        prefix_misses,
        obs: engine.take_obs(),
    })
}

/// Applies one client message: stamp, resume-or-submit, or cancel.
fn handle_msg(
    engine: &mut ServeEngine<'_>,
    store: &mut SessionStore,
    streams: &mut HashMap<RequestId, SyncSender<StreamEvent>>,
    session_resumes: &mut u64,
    session_misses: &mut u64,
    msg: ClientMsg,
) -> Result<(), ServeError> {
    match msg {
        ClientMsg::Submit { mut req, events } => {
            req.arrival_step = engine.clock();
            let id = req.id;
            // The stream is freshly created and capacity >= 1, so the
            // Queued event can never block.
            let _ = events.send(StreamEvent::Queued {
                step: req.arrival_step,
            });
            match req.session.and_then(|sid| store.take(sid)) {
                Some(snapshot) => {
                    *session_resumes += 1;
                    engine.submit_with_state(req, snapshot)?;
                }
                None => {
                    if req.session.is_some() {
                        *session_misses += 1;
                    }
                    engine.submit(vec![req])?;
                }
            }
            streams.insert(id, events);
        }
        ClientMsg::Cancel(id) => {
            engine.cancel(id);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ServeEngine};
    use crate::request::GenRequest;
    use crate::scheduler::Fifo;
    use lightmamba_model::{MambaConfig, MambaModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> MambaModel {
        MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(9)).unwrap()
    }

    fn engine(model: &MambaModel, slots: usize) -> ServeEngine<'_> {
        ServeEngine::new(
            model,
            EngineConfig {
                slots,
                max_steps: 50_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn streamed_tokens_match_the_completion_record() {
        let model = tiny_model();
        let (client, run) = run_frontend(
            engine(&model, 2),
            Box::new(Fifo),
            FrontendConfig::default(),
            |handle| {
                let mut stream = handle
                    .submit(GenRequest::greedy(0, vec![1, 2, 3], 6))
                    .unwrap();
                let mut events = Vec::new();
                let mut tokens = Vec::new();
                let mut done = None;
                while let Some(ev) = stream.recv() {
                    match &ev {
                        StreamEvent::Token { token, .. } => tokens.push(*token),
                        StreamEvent::Done(c) => done = Some((**c).clone()),
                        _ => {}
                    }
                    events.push(ev);
                }
                assert!(stream.recv().is_none(), "stream stays closed");
                (events, tokens, done.expect("request ran to completion"))
            },
        )
        .unwrap();
        let (events, tokens, done) = client;
        // Queued, Started, then every token, then Done — in order.
        assert!(matches!(events[0], StreamEvent::Queued { .. }));
        assert!(matches!(events[1], StreamEvent::Started { .. }));
        assert!(events.last().unwrap().is_terminal());
        assert_eq!(tokens, done.tokens, "streamed tokens = recorded tokens");
        assert_eq!(run.report.completed, 1);
        assert_eq!(run.report.cancellations, 0);
        // The frontend-observed completion matches the engine record.
        assert_eq!(run.completions.len(), 1);
        assert_eq!(run.completions[0].tokens, done.tokens);
    }

    #[test]
    fn concurrent_clients_each_get_their_own_stream() {
        let model = tiny_model();
        let (totals, run) = run_frontend(
            engine(&model, 4),
            Box::new(Fifo),
            FrontendConfig::default(),
            |handle| {
                let workers: Vec<_> = (0..6u32)
                    .map(|i| {
                        let h = handle.clone();
                        std::thread::spawn(move || {
                            let req =
                                GenRequest::greedy(0, vec![i + 1, i + 2], 3 + (i as usize % 3));
                            let stream = h.submit(req).unwrap();
                            stream.wait().expect("completes")
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|w| w.join().unwrap())
                    .collect::<Vec<_>>()
            },
        )
        .unwrap();
        assert_eq!(totals.len(), 6);
        assert_eq!(run.report.completed, 6);
        // Ids were assigned uniquely across racing clients.
        let mut ids: Vec<_> = totals.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
    }

    #[test]
    fn dropping_a_stream_cancels_and_frees_the_slot() {
        let model = tiny_model();
        let (kept, run) = run_frontend(
            engine(&model, 1),
            Box::new(Fifo),
            FrontendConfig::default(),
            |handle| {
                // The hog holds the only slot; drop it after its first
                // token, then a second request must still get served.
                let mut hog = handle
                    .submit(GenRequest::greedy(0, vec![1, 2], 400))
                    .unwrap();
                loop {
                    match hog.recv() {
                        Some(StreamEvent::Token { .. }) => break,
                        Some(_) => continue,
                        None => panic!("hog must stream at least one token"),
                    }
                }
                drop(hog);
                let next = handle.submit(GenRequest::greedy(0, vec![3, 4], 4)).unwrap();
                next.wait().expect("slot was reclaimed")
            },
        )
        .unwrap();
        assert_eq!(kept.tokens.len(), 4);
        assert_eq!(run.report.cancellations, 1);
        assert!(run.report.wasted_token_advances > 0);
        assert!(run.report.reclaimed_slot_steps > 0);
        assert_eq!(run.report.completed, 1, "only the survivor finished");
        // The hog's record is present and marked cancelled.
        assert!(run
            .completions
            .iter()
            .any(|c| c.finish == FinishReason::Cancelled));
    }

    #[test]
    fn explicit_cancel_still_delivers_a_terminal_event() {
        let model = tiny_model();
        let (saw_cancelled, run) = run_frontend(
            engine(&model, 1),
            Box::new(Fifo),
            FrontendConfig::default(),
            |handle| {
                let mut stream = handle
                    .submit(GenRequest::greedy(0, vec![1, 2], 400))
                    .unwrap();
                let mut cancelled = false;
                while let Some(ev) = stream.recv() {
                    if matches!(ev, StreamEvent::Token { .. }) && !cancelled {
                        stream.cancel();
                        cancelled = true;
                    }
                    if matches!(ev, StreamEvent::Cancelled { .. }) {
                        return true;
                    }
                }
                false
            },
        )
        .unwrap();
        assert!(saw_cancelled, "cancel must surface as a terminal event");
        assert_eq!(run.report.cancellations, 1);
    }

    #[test]
    fn sessions_resume_across_turns_through_the_store() {
        let model = tiny_model();
        let (turns, run) = run_frontend(
            engine(&model, 2),
            Box::new(Fifo),
            FrontendConfig::default(),
            |handle| {
                let mut turns = Vec::new();
                for turn in 0..3u32 {
                    let req = GenRequest::greedy(0, vec![10 + turn, 20 + turn], 4).with_session(42);
                    let stream = handle.submit(req).unwrap();
                    turns.push(stream.wait().expect("turn completes"));
                }
                turns
            },
        )
        .unwrap();
        assert_eq!(turns.len(), 3);
        assert_eq!(run.report.completed, 3);
        assert_eq!(run.session_misses, 1, "first turn starts cold");
        assert_eq!(run.session_resumes, 2, "later turns restore the state");
        assert_eq!(run.sessions_stored, 1, "the session is parked again");
        assert_eq!(run.session_evictions, 0);
        // Each resume is one state restore + one save in the trace.
        let moves: usize = run.report.trace.state_moves_per_step.iter().sum();
        assert_eq!(moves, 2 * 2 + 1, "3 saves + 2 restores");
    }

    #[test]
    fn obs_enabled_via_config_rides_back_in_the_run() {
        let model = tiny_model();
        let cfg = FrontendConfig {
            obs: Some(crate::observe::ObsConfig::default()),
            ..FrontendConfig::default()
        };
        let (done, run) = run_frontend(engine(&model, 2), Box::new(Fifo), cfg, |handle| {
            let req = GenRequest::greedy(0, vec![5, 6, 7], 4).with_session(7);
            let stream = handle.submit(req).unwrap();
            stream.wait().expect("completes")
        })
        .unwrap();
        assert_eq!(done.tokens.len(), 4);
        let obs = run.obs.expect("obs was enabled through FrontendConfig");
        let text = obs.exposition();
        assert!(text.contains("engine_completions_total 1"), "{text}");
        assert!(text.contains("engine_session_parks_total 1"), "{text}");
        // The flight recorder saw every step and the full lifecycle.
        assert_eq!(obs.flight.steps().len(), run.report.trace.steps());
        let timeline = obs.flight.timeline(done.id);
        assert!(!timeline.is_empty(), "lifecycle timeline was recorded");
        // Phase spans were recorded under the step spans.
        assert!(obs.spans.spans().iter().any(|s| s.name == "step"));
        assert!(obs.spans.spans().iter().any(|s| s.name == "advance"));
        assert_eq!(obs.spans.open_depth(), 0, "all spans closed");
    }

    #[test]
    fn a_dead_engine_thread_fails_streams_instead_of_hanging() {
        use crate::scheduler::AdmissionCtx;
        use std::sync::{Arc, Mutex};

        // A policy that detonates on its first admission decision kills
        // the engine thread the hard way — nothing catches it.
        struct Bomb;
        impl crate::scheduler::Policy for Bomb {
            fn select(&mut self, _ctx: &AdmissionCtx<'_>) -> Vec<usize> {
                panic!("policy exploded")
            }
            fn name(&self) -> &'static str {
                "bomb"
            }
        }

        let model = tiny_model();
        let seen: Arc<Mutex<Vec<StreamEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let seen_by_client = Arc::clone(&seen);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_frontend(
                engine(&model, 1),
                Box::new(Bomb),
                FrontendConfig::default(),
                move |handle| {
                    let mut stream = handle.submit(GenRequest::greedy(0, vec![1, 2], 4)).unwrap();
                    while let Some(ev) = stream.recv() {
                        seen_by_client.lock().unwrap().push(ev);
                    }
                },
            )
        }));
        // The engine thread's panic propagates out of run_frontend…
        assert!(run.is_err(), "the engine panic must not be swallowed");
        // …but the client's reader observed an explicit terminal
        // failure first instead of hanging or ending silently.
        let seen = seen.lock().unwrap();
        assert!(matches!(seen[0], StreamEvent::Queued { .. }));
        assert!(
            matches!(seen.last(), Some(StreamEvent::Failed { step: None })),
            "{seen:?}"
        );
    }

    #[test]
    fn a_step_budget_stop_fails_open_streams() {
        let model = tiny_model();
        let eng = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 1,
                max_steps: 3,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let (events, run) =
            run_frontend(eng, Box::new(Fifo), FrontendConfig::default(), |handle| {
                // Far more tokens than three steps can produce: the engine
                // stops at its budget with the stream still open.
                let mut stream = handle
                    .submit(GenRequest::greedy(0, vec![1, 2], 400))
                    .unwrap();
                let mut events = Vec::new();
                while let Some(ev) = stream.recv() {
                    events.push(ev);
                }
                events
            })
            .unwrap();
        assert!(matches!(
            events.last(),
            Some(StreamEvent::Failed { step: None })
        ));
        assert_eq!(run.report.completed, 0);
    }

    #[test]
    fn a_backend_fault_surfaces_as_a_failed_stream_event() {
        use crate::backend::FpBackend;
        use crate::chaos::{ChaosBackend, FaultKind, FaultPlan, FaultWindow};
        use crate::registry::ModelRegistry;

        let model = tiny_model();
        let mut reg = ModelRegistry::new();
        let plan = FaultPlan::from_windows(vec![FaultWindow {
            start: 1,
            len: 2,
            kind: FaultKind::StepError,
        }]);
        reg.register(
            "flaky",
            Box::new(ChaosBackend::new(Box::new(FpBackend::new(&model)), plan)),
        )
        .unwrap();
        let eng = ServeEngine::with_registry(
            reg,
            EngineConfig {
                slots: 1,
                max_steps: 50_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let (failed_at, run) =
            run_frontend(eng, Box::new(Fifo), FrontendConfig::default(), |handle| {
                let mut stream = handle.submit(GenRequest::greedy(0, vec![1, 2], 8)).unwrap();
                let mut failed_at = None;
                while let Some(ev) = stream.recv() {
                    if let StreamEvent::Failed { step } = ev {
                        failed_at = Some(step);
                    }
                }
                failed_at
            })
            .unwrap();
        // The fault was delivered as a real terminal event with the
        // engine step it happened at — not a synthesized death.
        assert_eq!(failed_at, Some(Some(1)));
        assert_eq!(run.report.failed, 1);
        assert!(run.report.backend_faults >= 1);
    }

    #[test]
    fn an_overloaded_frontend_rejects_with_a_retry_hint() {
        let model = tiny_model();
        let mut eng = engine(&model, 1);
        eng.set_resilience(crate::resilience::ResilienceConfig {
            queue_limit: Some(0),
            ..crate::resilience::ResilienceConfig::default()
        });
        let (event, run) = run_frontend(eng, Box::new(Fifo), FrontendConfig::default(), |handle| {
            let mut stream = handle.submit(GenRequest::greedy(0, vec![1, 2], 4)).unwrap();
            let mut terminal = None;
            while let Some(ev) = stream.recv() {
                if ev.is_terminal() {
                    terminal = Some(ev);
                }
            }
            terminal.expect("a shed request still gets its terminal event")
        })
        .unwrap();
        match event {
            StreamEvent::Rejected {
                retry_after_steps, ..
            } => assert!(retry_after_steps >= 1),
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert_eq!(run.report.rejected, 1);
        assert_eq!(run.report.completed, 0);
    }

    #[test]
    fn zero_stream_capacity_is_rejected() {
        let model = tiny_model();
        let cfg = FrontendConfig {
            stream_capacity: 0,
            ..FrontendConfig::default()
        };
        assert!(run_frontend(engine(&model, 1), Box::new(Fifo), cfg, |_| ()).is_err());
    }
}
