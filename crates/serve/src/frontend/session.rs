//! The multi-turn session store: parked conversation states.

use std::collections::HashMap;

use crate::engine::SessionSnapshot;

/// A capacity-bounded LRU map from session id to the
/// [`SessionSnapshot`] its last turn retired with. Because a Mamba2
/// session is one fixed-size state (no KV cache growing with history),
/// the store's footprint is exactly `capacity` state slabs regardless
/// of how long the conversations run — bounding it is slot counting,
/// the same property the engine's slot pool is built on.
///
/// [`SessionStore::take`] *consumes* the entry: while a turn is in
/// flight its state lives in the engine, and the completed turn's
/// snapshot is re-inserted on retirement. A session evicted between
/// turns (LRU pressure) simply re-prefills from an empty state on its
/// next turn — a throughput cost, never a correctness one.
#[derive(Debug, Default)]
pub struct SessionStore {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, (u64, SessionSnapshot)>,
    evictions: u64,
}

impl SessionStore {
    /// An empty store holding at most `capacity` session states.
    pub fn new(capacity: usize) -> Self {
        SessionStore {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            evictions: 0,
        }
    }

    /// Parks a session's snapshot, refreshing its recency (an existing
    /// entry for the same session is replaced). When the store would
    /// exceed its capacity, the least-recently-touched entry is
    /// evicted.
    pub fn insert(&mut self, session: u64, snapshot: SessionSnapshot) {
        self.tick += 1;
        self.entries.insert(session, (self.tick, snapshot));
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(&sid, _)| sid)
                .expect("len > capacity >= 0 implies non-empty");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Removes and returns the session's parked snapshot, if present.
    pub fn take(&mut self, session: u64) -> Option<SessionSnapshot> {
        self.entries.remove(&session).map(|(_, snap)| snap)
    }

    /// Whether the session currently has a parked snapshot.
    pub fn contains(&self, session: u64) -> bool {
        self.entries.contains_key(&session)
    }

    /// Parked sessions right now (always `<= capacity`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no session is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sessions evicted by LRU pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::PausedState;
    use lightmamba_model::ModelState;

    fn snap(token: u32) -> SessionSnapshot {
        SessionSnapshot {
            state: PausedState::new(ModelState::new(&lightmamba_model::MambaConfig::tiny())),
            pending_token: token,
            consumed_tokens: 1,
        }
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        let mut store = SessionStore::new(2);
        store.insert(1, snap(10));
        store.insert(2, snap(20));
        // Touch session 1 by re-inserting, then overflow with 3:
        // session 2 is now the LRU victim.
        store.insert(1, snap(11));
        store.insert(3, snap(30));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.contains(1));
        assert!(!store.contains(2));
        assert!(store.contains(3));
        assert_eq!(store.take(1).expect("parked").pending_token, 11);
        assert_eq!(store.len(), 1);
        assert!(store.take(1).is_none(), "take consumes");
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut store = SessionStore::new(3);
        for sid in 0..50 {
            store.insert(sid, snap(sid as u32));
            assert!(store.len() <= 3);
        }
        assert_eq!(store.len(), 3);
        assert_eq!(store.evictions(), 47);
        // The survivors are exactly the three most recent.
        for sid in 47..50 {
            assert!(store.contains(sid));
        }
    }
}
