//! Client-side handles: submission and per-request token streams.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;

use crate::error::ServeError;
use crate::request::{Completion, GenRequest, RequestId};

/// One notification on a request's stream, in delivery order:
/// [`StreamEvent::Queued`] once at intake, [`StreamEvent::Started`]
/// once at admission, then [`StreamEvent::Token`] per sampled token,
/// closed by exactly one terminal event ([`StreamEvent::Done`],
/// [`StreamEvent::Cancelled`], [`StreamEvent::Expired`],
/// [`StreamEvent::Failed`], or [`StreamEvent::Rejected`]) — the
/// per-request view of TGI-style server-sent token streaming.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// The request entered the engine's queue.
    Queued {
        /// Engine step at intake.
        step: u64,
    },
    /// The request was admitted to a slot; prefill starts.
    Started {
        /// Admission step.
        step: u64,
    },
    /// One generated token.
    Token {
        /// The sampled token id.
        token: u32,
        /// The sampling step.
        step: u64,
    },
    /// Terminal: the request ran to completion (EOS or token budget);
    /// the full [`Completion`] record carries the tokens and stamps.
    Done(Box<Completion>),
    /// Terminal: the request was cancelled (explicitly or by dropping
    /// its [`TokenStream`]) — tokens streamed so far remain valid.
    Cancelled {
        /// The step the engine processed the cancellation.
        step: u64,
    },
    /// Terminal: the request's deadline expired before it finished.
    Expired {
        /// The eviction step.
        step: u64,
    },
    /// Terminal: the request was retired by a backend fault — its
    /// serving backend errored or panicked mid-flight and the engine
    /// failed the in-flight work rather than retry it (tokens streamed
    /// so far remain valid). Also synthesized with `step: None` when
    /// the engine thread dies outright, so readers never hang or end
    /// silently on engine death.
    Failed {
        /// The step the engine retired the request, or `None` when the
        /// stream synthesized this event because the engine thread is
        /// gone.
        step: Option<u64>,
    },
    /// Terminal: the request was shed at admission under overload
    /// (queue over [`crate::resilience::ResilienceConfig::queue_limit`]
    /// or its class degraded away) — it never held a slot.
    Rejected {
        /// The shed step.
        step: u64,
        /// Engine-suggested virtual-time resubmission delay.
        retry_after_steps: u64,
    },
}

impl StreamEvent {
    /// Whether this event closes the stream (no further events follow).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            StreamEvent::Done(_)
                | StreamEvent::Cancelled { .. }
                | StreamEvent::Expired { .. }
                | StreamEvent::Failed { .. }
                | StreamEvent::Rejected { .. }
        )
    }
}

/// What clients send the engine thread over the intake channel.
pub(crate) enum ClientMsg {
    /// A new request plus the sending half of its event stream.
    Submit {
        /// The request (id already assigned by the handle).
        req: GenRequest,
        /// Where the engine loop delivers this request's events.
        events: SyncSender<StreamEvent>,
    },
    /// Client hang-up for an in-flight request.
    Cancel(RequestId),
}

/// Cloneable client handle to a running serving frontend
/// ([`crate::frontend::run_frontend`]). Each [`FrontendHandle::submit`]
/// returns a private [`TokenStream`]; clones share one intake queue and
/// one id space, so any number of concurrent clients can feed the same
/// engine.
#[derive(Clone)]
pub struct FrontendHandle {
    intake: Sender<ClientMsg>,
    next_id: Arc<AtomicU64>,
    n_models: usize,
    stream_capacity: usize,
}

impl std::fmt::Debug for FrontendHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendHandle")
            .field("n_models", &self.n_models)
            .field("stream_capacity", &self.stream_capacity)
            .finish()
    }
}

impl FrontendHandle {
    pub(crate) fn new(intake: Sender<ClientMsg>, n_models: usize, stream_capacity: usize) -> Self {
        FrontendHandle {
            intake,
            next_id: Arc::new(AtomicU64::new(0)),
            n_models,
            stream_capacity,
        }
    }

    /// Submits a request and returns its event stream. The handle
    /// assigns the request id (overwriting `req.id` — ids must be
    /// unique across all clients) and stamps the arrival step when the
    /// engine thread picks the request up, so wall-clock submission
    /// order is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an empty prompt (or a
    /// frontend whose engine thread has already shut down) and
    /// [`ServeError::UnknownModel`] for an out-of-range model id —
    /// validated here so the engine thread never sees a rejectable
    /// request.
    pub fn submit(&self, mut req: GenRequest) -> Result<TokenStream, ServeError> {
        if req.prompt.is_empty() {
            return Err(ServeError::InvalidConfig(
                "streamed request has an empty prompt".into(),
            ));
        }
        if req.model >= self.n_models {
            return Err(ServeError::UnknownModel(format!(
                "streamed request names model id {} but only {} model(s) are registered",
                req.model, self.n_models
            )));
        }
        req.id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let id = req.id;
        let (events, rx) = sync_channel(self.stream_capacity);
        self.intake
            .send(ClientMsg::Submit { req, events })
            .map_err(|_| {
                ServeError::InvalidConfig("serving frontend has already shut down".into())
            })?;
        Ok(TokenStream {
            id,
            rx,
            intake: self.intake.clone(),
            finished: false,
        })
    }
}

/// The receiving half of one request's event stream. Dropping it
/// before the terminal event cancels the request — a disconnected
/// client frees its slot within one engine step, exactly like an
/// explicit [`TokenStream::cancel`].
#[derive(Debug)]
pub struct TokenStream {
    id: RequestId,
    rx: Receiver<StreamEvent>,
    intake: Sender<ClientMsg>,
    finished: bool,
}

impl TokenStream {
    /// The id the frontend assigned this request.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Blocks for the next event; `None` after the terminal event. If
    /// the engine thread stops without delivering one (it died, or the
    /// run hit its step budget), the stream synthesizes a single
    /// terminal [`StreamEvent::Failed`]` { step: None }` so readers
    /// and [`TokenStream::wait`] observe the failure instead of the
    /// stream silently ending.
    pub fn recv(&mut self) -> Option<StreamEvent> {
        if self.finished {
            return None;
        }
        match self.rx.recv() {
            Ok(ev) => {
                if ev.is_terminal() {
                    self.finished = true;
                }
                Some(ev)
            }
            Err(_) => {
                // The sender is gone with no terminal event delivered:
                // the engine thread is dead (or stopped at its step
                // budget). Surface that as an explicit failure, once.
                self.finished = true;
                Some(StreamEvent::Failed { step: None })
            }
        }
    }

    /// Cancels the request mid-stream. Already-streamed tokens stay
    /// valid; the stream still delivers its terminal event
    /// ([`StreamEvent::Cancelled`], or [`StreamEvent::Done`] if the
    /// cancel raced a natural completion), so keep reading to observe
    /// which won.
    pub fn cancel(&mut self) {
        if !self.finished {
            let _ = self.intake.send(ClientMsg::Cancel(self.id));
        }
    }

    /// Drains the stream to its terminal event and returns the
    /// [`Completion`] if the request ran to completion (`None` if it
    /// was cancelled, expired, or the engine stopped first).
    pub fn wait(mut self) -> Option<Completion> {
        while let Some(ev) = self.recv() {
            if let StreamEvent::Done(c) = ev {
                return Some(*c);
            }
        }
        None
    }
}

impl Iterator for TokenStream {
    type Item = StreamEvent;

    fn next(&mut self) -> Option<StreamEvent> {
        self.recv()
    }
}

impl Drop for TokenStream {
    fn drop(&mut self) {
        // A dropped stream is a disconnected client: cancel unless the
        // request already reached its terminal event. Send failure
        // means the engine thread is gone — nothing left to cancel.
        if !self.finished {
            let _ = self.intake.send(ClientMsg::Cancel(self.id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn orphan_stream() -> (SyncSender<StreamEvent>, TokenStream) {
        // The intake receiver is dropped immediately: the cancel sends
        // a dying stream attempts are harmless no-ops, exactly like a
        // dead engine thread.
        let (intake, _) = channel();
        let (tx, rx) = sync_channel(4);
        (
            tx,
            TokenStream {
                id: 0,
                rx,
                intake,
                finished: false,
            },
        )
    }

    #[test]
    fn engine_death_synthesizes_exactly_one_terminal_failed_event() {
        let (tx, mut stream) = orphan_stream();
        tx.send(StreamEvent::Queued { step: 0 }).unwrap();
        drop(tx); // the engine thread died without a terminal event
        assert!(matches!(stream.recv(), Some(StreamEvent::Queued { .. })));
        let failed = stream.recv().expect("death surfaces as an event");
        assert!(
            matches!(failed, StreamEvent::Failed { step: None }),
            "{failed:?}"
        );
        assert!(failed.is_terminal());
        assert!(
            stream.recv().is_none(),
            "the synthesized terminal fires once"
        );
    }

    #[test]
    fn wait_returns_none_instead_of_hanging_on_engine_death() {
        let (tx, stream) = orphan_stream();
        drop(tx);
        assert!(stream.wait().is_none());
    }
}
