//! `lightmamba-serve`: continuous-batching serving over the Mamba2
//! substrate, with accelerator-costed throughput projection.
//!
//! The paper's systems insight is that Mamba2's decode state is *fixed
//! size* — no KV cache growing with sequence length (the flat curve of
//! Fig. 9a). This crate builds the serving layer that insight makes
//! cheap: every resident sequence costs one statically-sized slot
//! ([`slots::SlotPool`]), so admission control is slot counting, and the
//! batched step ([`lightmamba_model::MambaModel::forward_step_batch_indexed`])
//! shares each layer's weights across all resident sequences — the
//! software analogue of the accelerator's shared weight stream.
//!
//! * [`request`] — generation requests (priority classes, deadlines)
//!   and completion records;
//! * [`traffic`] — synthetic Poisson traffic over chat / summarization /
//!   code-completion profiles, including the deadline-heavy mix
//!   deadline-aware policies compete on;
//! * [`slots`] — the fixed pool of per-sequence recurrent states;
//! * [`backend`] — pluggable execution backends ([`backend::DecodeBackend`]):
//!   the FP reference and the W4A4 quantized model, each with a
//!   [`backend::CostProfile`] for accelerator pricing, plus the
//!   pause/resume primitives ([`backend::PausedState`]) preemptive
//!   scheduling is built on;
//! * [`registry`] — named backends multiplexed over one slot pool;
//! * [`scheduler`] — admission and preemption policies
//!   ([`scheduler::Policy`]) that select *which* candidates (fresh
//!   arrivals and paused sequences alike) hold the slots each step:
//!   FIFO continuous batching, the static-batching baseline,
//!   earliest-deadline-first, strict priority classes, and weighted
//!   fair queueing across models — EDF and priority each with a
//!   preemptive variant that pauses residents for urgent work;
//! * [`engine`] — the virtual-time serving loop (chunked prefill
//!   interleaved with decode, policy-ordered admission, doomed-request
//!   eviction, policy-driven pause/resume of resident sequences,
//!   join/evict per step, one sub-batch per model per step);
//! * [`metrics`] — TTFT / e2e / queueing percentiles, occupancy, traces,
//!   per-model and per-priority-class breakdowns, deadline-hit-rate,
//!   preemption/resume counters and resume-latency percentiles;
//! * [`accel_cost`] — projects a run onto VCK190/U280 seconds via
//!   `lightmamba_accel`'s batch-aware cycle model, pricing each step's
//!   token-advances (chunked prefill included) with that backend's
//!   weight-stream bytes, and each pause/resume as one fixed-size state
//!   transfer on the same stream;
//! * [`observe`] — the engine-side observability layer over
//!   `lightmamba_obs`: pre-registered engine metrics with
//!   Prometheus-style exposition, per-step phase spans exportable as a
//!   two-lane Chrome trace (host wall clock + accelerator-projected
//!   virtual time), and a flight recorder of recent steps and request
//!   lifecycle timelines with optional SLO capture;
//! * [`prefix`] — the shared-prefix state cache: because a whole
//!   prompt prefix compresses into one fixed-size state, requests
//!   carrying the same system prompt restore a cached post-prefix
//!   snapshot (one state transfer) instead of re-prefilling it, with
//!   token-budget admission ([`scheduler::TokenBudget`]) capping
//!   per-step prefill and resident-token totals under every policy;
//! * [`resilience`] — fault tolerance: each backend is one fault
//!   domain whose errors and panics the engine contains (the domain's
//!   requests retire as [`request::FinishReason::Failed`], nothing else
//!   is touched); faulting backends enter a deterministic
//!   exponential-backoff quarantine with a half-open canary probe,
//!   overload is shed at admission from a bounded queue, and a
//!   degradation controller walks a documented ladder under sustained
//!   SLO breach;
//! * [`chaos`] — the deterministic fault-injection harness: a seeded
//!   [`chaos::FaultPlan`] drives a [`chaos::ChaosBackend`] wrapper that
//!   injects step errors, panics, latency spikes, and restore
//!   corruption on a reproducible schedule, so every resilience test
//!   and the `serve_traffic --chaos` study replay exactly;
//! * [`frontend`] — the async streaming serving frontend: clients
//!   submit through a cloneable handle and read per-token
//!   [`frontend::StreamEvent`]s, dropping a stream cancels its request
//!   mid-decode, and completed turns park their fixed-size state in a
//!   capacity-bounded [`frontend::SessionStore`] so the next turn of a
//!   chat resumes with one state transfer instead of re-prefilling the
//!   whole history.
//!
//! # Example
//!
//! ```
//! use lightmamba_model::{MambaConfig, MambaModel};
//! use lightmamba_serve::engine::{EngineConfig, ServeEngine};
//! use lightmamba_serve::scheduler::Fifo;
//! use lightmamba_serve::traffic::{TrafficGenerator, TrafficScenario};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let model = MambaModel::synthetic(MambaConfig::tiny(), &mut rng)?;
//! let mut traffic =
//!     TrafficGenerator::new(TrafficScenario::burst(8), model.config().vocab_size, 1);
//! let mut engine = ServeEngine::new(
//!     &model,
//!     EngineConfig { slots: 4, max_steps: 50_000, prefill_chunk: 4, threads: 1, ..Default::default() },
//! )?;
//! engine.submit(traffic.generate(1))?;
//! let report = engine.run(&mut Fifo)?;
//! assert_eq!(report.completed, 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;

pub mod accel_cost;
pub mod backend;
pub mod chaos;
pub mod engine;
pub mod frontend;
pub mod metrics;
pub mod observe;
pub mod prefix;
pub mod registry;
pub mod request;
pub mod resilience;
pub mod scheduler;
pub mod slots;
pub mod traffic;

pub use error::ServeError;
pub use lightmamba_pool::WorkerPool;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
