//! Latency/throughput aggregation for engine runs.
//!
//! All raw timestamps are in *engine steps* (one batched model step).
//! Steps map to wall time only through a cost model — engine-side
//! metrics stay hardware-free, and `crate::accel_cost` converts a run's
//! trace to projected seconds on a concrete accelerator.

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Computes stats over `samples` (returns zeros when empty).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Percentiles {
                n: 0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pick = |q: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        Percentiles {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *sorted.last().unwrap(),
        }
    }
}

/// Per-step observations the engine records (consumed by the cost model).
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Batch size (active sequences) of each executed step — also the
    /// tokens *processed* by the step, one input per resident sequence.
    pub batch_per_step: Vec<usize>,
    /// Decode tokens *sampled* by each step (the boundary step that
    /// consumes the final prompt token also samples, so this can exceed
    /// the step's decode-input count).
    pub tokens_per_step: Vec<usize>,
    /// Waiting-queue depth after admissions, per step.
    pub queue_depth_per_step: Vec<usize>,
}

impl RunTrace {
    /// Number of executed steps.
    pub fn steps(&self) -> usize {
        self.batch_per_step.len()
    }

    /// Largest batch any step ran.
    pub fn peak_batch(&self) -> usize {
        self.batch_per_step.iter().copied().max().unwrap_or(0)
    }

    /// Mean batch size over non-idle steps.
    pub fn mean_batch(&self) -> f64 {
        let busy: Vec<usize> = self
            .batch_per_step
            .iter()
            .copied()
            .filter(|&b| b > 0)
            .collect();
        if busy.is_empty() {
            0.0
        } else {
            busy.iter().sum::<usize>() as f64 / busy.len() as f64
        }
    }
}

/// Aggregate outcome of an engine run (step-denominated).
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Admission policy that produced the run.
    pub scheduler: &'static str,
    /// Requests completed (max-tokens or EOS).
    pub completed: usize,
    /// Requests evicted on deadline.
    pub evicted: usize,
    /// Steps executed.
    pub steps: u64,
    /// Generated (decode) tokens across all requests.
    pub generated_tokens: u64,
    /// Prompt tokens consumed across all requests.
    pub prefill_tokens: u64,
    /// Time-to-first-token stats in steps (arrival → first token).
    pub ttft_steps: Percentiles,
    /// End-to-end latency stats in steps.
    pub e2e_steps: Percentiles,
    /// Queueing delay stats in steps (arrival → admission).
    pub queue_steps: Percentiles,
    /// Slot occupancy (mean batch / capacity).
    pub mean_occupancy: f64,
    /// Per-step observations for cost models.
    pub trace: RunTrace,
}

impl ServeReport {
    /// Decode tokens per engine step — the hardware-free throughput.
    pub fn tokens_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.generated_tokens as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_set() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&xs);
        assert_eq!(p.n, 100);
        assert!((p.mean - 50.5).abs() < 1e-9);
        assert!((p.p50 - 51.0).abs() <= 1.0);
        assert!((p.p90 - 90.0).abs() <= 1.0);
        assert!((p.p99 - 99.0).abs() <= 1.0);
        assert_eq!(p.max, 100.0);
    }

    #[test]
    fn empty_samples_yield_zeros() {
        let p = Percentiles::of(&[]);
        assert_eq!(p.n, 0);
        assert_eq!(p.max, 0.0);
    }

    #[test]
    fn trace_aggregates() {
        let t = RunTrace {
            batch_per_step: vec![0, 2, 4, 0, 6],
            tokens_per_step: vec![0, 2, 4, 0, 6],
            queue_depth_per_step: vec![5, 3, 1, 0, 0],
        };
        assert_eq!(t.steps(), 5);
        assert_eq!(t.peak_batch(), 6);
        assert!((t.mean_batch() - 4.0).abs() < 1e-9);
    }
}
