//! Latency/throughput aggregation for engine runs.
//!
//! All raw timestamps are in *engine steps* (one batched model step).
//! Steps map to wall time only through a cost model — engine-side
//! metrics stay hardware-free, and `crate::accel_cost` converts a run's
//! trace to projected seconds on a concrete accelerator. With chunked
//! prefill a step is no longer one token per resident sequence, so the
//! trace distinguishes *residency* (`batch_per_step`, what the slot
//! pool and URAM bound care about) from *work* (`processed_per_step`,
//! token-advances, what the cost model prices). Preemptive policies add
//! a third kind of traffic: every pause/resume moves one fixed-size
//! recurrent state across the memory stream
//! (`state_moves_per_step`), and the run-level counters
//! (`ServeReport::preemptions`, `resumes`, `resume_latency_steps`)
//! summarize how often and for how long sequences were benched.

use lightmamba_obs::percentile::{nearest_rank, sort_samples};

use crate::request::Priority;

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Computes stats over `samples` (returns zeros when empty).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Percentiles {
                n: 0,
                mean: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sort_samples(&mut sorted);
        // The empty case returned above, so every rank is present.
        let pick = |q: f64| -> f64 { nearest_rank(&sorted, q).expect("non-empty samples") };
        Percentiles {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *sorted.last().unwrap(),
        }
    }
}

/// Per-step observations the engine records (consumed by the cost model).
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Batch size (resident sequences) of each executed step — what the
    /// slot pool hosts, hence what the URAM residency bound prices.
    pub batch_per_step: Vec<usize>,
    /// Token-advances of each executed step: one per decoding sequence
    /// plus up to `prefill_chunk` per prefilling sequence. Equal to
    /// `batch_per_step` when the chunk is 1; the cost model prices steps
    /// by this (the weight stream is shared across all of a step's
    /// token-advances).
    pub processed_per_step: Vec<usize>,
    /// Per-model sub-batch *sequence counts* of each executed step,
    /// indexed by [`crate::registry::ModelId`] (every inner vec has one
    /// entry per registered model; they sum to the step's
    /// `batch_per_step` entry).
    pub sub_batches_per_step: Vec<Vec<usize>>,
    /// Per-model *token-advances* of each executed step (same shape as
    /// `sub_batches_per_step`, summing to `processed_per_step`). The
    /// multiplex cost model prices each sub-batch's tokens with that
    /// backend's own weight stream.
    pub sub_processed_per_step: Vec<Vec<usize>>,
    /// Decode tokens *sampled* by each step (the boundary step that
    /// consumes the final prompt chunk also samples, so this can exceed
    /// the step's decode-input count).
    pub tokens_per_step: Vec<usize>,
    /// Waiting-queue depth after admissions, per step.
    pub queue_depth_per_step: Vec<usize>,
    /// Resident sequences preempted (paused out of their slot) by each
    /// step.
    pub preemptions_per_step: Vec<usize>,
    /// Paused sequences resumed into a slot by each step.
    pub resumes_per_step: Vec<usize>,
    /// Paused-queue depth after admissions, per step.
    pub paused_depth_per_step: Vec<usize>,
    /// State transfers of each step: every pause writes one fixed-size
    /// recurrent state off-chip and every resume reads one back, on the
    /// same stream the weights ride — so the cost models price each
    /// move as state bytes of DMA (`preemptions + resumes` that step).
    pub state_moves_per_step: Vec<usize>,
    /// Per-model state transfers of each step (same shape as
    /// `sub_batches_per_step`, summing to `state_moves_per_step`); the
    /// multiplex cost model attributes each move to its model.
    pub sub_state_moves_per_step: Vec<Vec<usize>>,
    /// Requests evicted by each step because their client cancelled (or
    /// dropped its stream). Cancellations are processed at the top of
    /// the step, so a slot freed here is offered to admission in the
    /// same step.
    pub cancellations_per_step: Vec<usize>,
    /// Prompt (prefill) tokens fed by each step — the subset of
    /// `processed_per_step` that [`crate::scheduler::TokenBudget`]'s
    /// per-step prefill cap bounds (the budget proptests assert every
    /// entry stays under it).
    pub prefill_per_step: Vec<usize>,
    /// Resident-token footprint (Σ `prompt + max_new` over slot-holders)
    /// at each step's post-admission peak — what the budget's
    /// `max_total_tokens` bounds. Recorded whether or not a budget is
    /// set.
    pub resident_tokens_per_step: Vec<usize>,
    /// Admissions the token budget deferred at each step (kept queued,
    /// not dropped). All zeros when no budget is configured.
    pub budget_deferred_per_step: Vec<usize>,
}

impl RunTrace {
    /// Number of executed steps.
    pub fn steps(&self) -> usize {
        self.batch_per_step.len()
    }

    /// Largest batch any step ran.
    pub fn peak_batch(&self) -> usize {
        self.batch_per_step.iter().copied().max().unwrap_or(0)
    }

    /// Mean batch size over non-idle steps.
    pub fn mean_batch(&self) -> f64 {
        let busy: Vec<usize> = self
            .batch_per_step
            .iter()
            .copied()
            .filter(|&b| b > 0)
            .collect();
        if busy.is_empty() {
            0.0
        } else {
            busy.iter().sum::<usize>() as f64 / busy.len() as f64
        }
    }
}

/// Per-model slice of a run (finished requests of one registered model).
#[derive(Debug, Clone)]
pub struct ModelBreakdown {
    /// The model's registry id.
    pub model: usize,
    /// The model's registered name.
    pub name: String,
    /// Requests completed on this model (max-tokens or EOS).
    pub completed: usize,
    /// Requests evicted on deadline.
    pub evicted: usize,
    /// Tokens generated by this model's finished requests.
    pub generated_tokens: u64,
    /// Token-advances this model processed across all steps (Σ of its
    /// per-step token counts: prefill consumption plus decode,
    /// in-flight work included).
    pub processed_tokens: u64,
    /// Time-to-first-token stats in steps for this model's requests.
    pub ttft_steps: Percentiles,
    /// End-to-end latency stats in steps for this model's requests.
    pub e2e_steps: Percentiles,
}

/// Per-priority-class slice of a run.
#[derive(Debug, Clone)]
pub struct ClassBreakdown {
    /// The priority class.
    pub priority: Priority,
    /// Requests of this class that completed (max-tokens or EOS).
    pub completed: usize,
    /// Requests of this class evicted on deadline.
    pub evicted: usize,
    /// Deadline-carrying requests of this class observed so far.
    pub deadline_total: usize,
    /// Deadline-carrying requests of this class that completed.
    pub deadline_hits: usize,
    /// Time-to-first-token stats in steps for this class.
    pub ttft_steps: Percentiles,
    /// End-to-end latency stats in steps for this class.
    pub e2e_steps: Percentiles,
    /// Queueing delay stats in steps for this class.
    pub queue_steps: Percentiles,
}

/// Aggregate outcome of an engine run (step-denominated).
///
/// # Example
///
/// ```
/// use lightmamba_model::{MambaConfig, MambaModel};
/// use lightmamba_serve::engine::{EngineConfig, ServeEngine};
/// use lightmamba_serve::request::GenRequest;
/// use lightmamba_serve::scheduler::Fifo;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), lightmamba_serve::ServeError> {
/// let model = MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(1))?;
/// let mut engine = ServeEngine::new(
///     &model,
///     EngineConfig { slots: 2, max_steps: 10_000, prefill_chunk: 2, threads: 1, ..Default::default() },
/// )?;
/// engine.submit(vec![
///     GenRequest::greedy(0, vec![1, 2, 3], 4).with_deadline(100),
///     GenRequest::greedy(1, vec![4, 5], 3),
/// ])?;
/// let report = engine.run(&mut Fifo)?;
/// assert_eq!(report.completed, 2);
/// assert_eq!(report.generated_tokens, 7);
/// // One of the two requests carried a deadline and met it.
/// assert_eq!(report.deadline_hit_rate(), Some(1.0));
/// // FIFO never preempts: no pause traffic in the trace.
/// assert_eq!(report.preemptions, 0);
/// assert!(report.trace.state_moves_per_step.iter().all(|&m| m == 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Admission policy that produced the run.
    pub policy: &'static str,
    /// Requests completed (max-tokens or EOS).
    pub completed: usize,
    /// Requests evicted on deadline.
    pub evicted: usize,
    /// Requests retired by backend faults
    /// ([`crate::request::FinishReason::Failed`]) — the blast radius of
    /// contained errors and panics.
    pub failed: usize,
    /// Arrivals shed by overload protection
    /// ([`crate::request::FinishReason::Rejected`]).
    pub rejected: usize,
    /// Backend faults contained across the run (error returns plus
    /// caught panics; at most one per model per step).
    pub backend_faults: u64,
    /// Quarantine entries (first faults and half-open re-faults).
    pub quarantine_entries: u64,
    /// Quarantine recoveries (a half-open canary survived and the
    /// backend was readmitted).
    pub quarantine_recoveries: u64,
    /// Steps executed.
    pub steps: u64,
    /// Generated (decode) tokens across all requests.
    pub generated_tokens: u64,
    /// Prompt tokens consumed across all requests.
    pub prefill_tokens: u64,
    /// Deadline-carrying requests that left the engine.
    pub deadline_total: usize,
    /// Deadline-carrying requests that completed within their budget.
    pub deadline_hits: usize,
    /// Requests evicted by client cancellation or stream disconnect.
    pub cancellations: usize,
    /// Token-advances the engine spent on requests that were later
    /// cancelled — prefill chunks consumed plus decode feeds that never
    /// reached a client. The cost models convert this into projected
    /// wasted seconds.
    pub wasted_token_advances: u64,
    /// Slot-steps handed back by cancellations of *resident* sequences:
    /// the minimum remaining service (in engine steps) each cancelled
    /// resident still owed when its slot was reclaimed — the capacity
    /// cancellation returned to the admission queue.
    pub reclaimed_slot_steps: u64,
    /// Pause events across the run (one request may be preempted more
    /// than once).
    pub preemptions: u64,
    /// Resume events — pause episodes that returned to a slot (the
    /// remainder ended in deadline eviction while paused).
    pub resumes: u64,
    /// Distinct requests preempted at least once.
    pub preempted_requests: usize,
    /// Steps between pause and resume, per completed pause episode —
    /// how long preemption benched its victims.
    pub resume_latency_steps: Percentiles,
    /// Time-to-first-token stats in steps (arrival → first token).
    pub ttft_steps: Percentiles,
    /// End-to-end latency stats in steps.
    pub e2e_steps: Percentiles,
    /// Queueing delay stats in steps (arrival → admission).
    pub queue_steps: Percentiles,
    /// Slot occupancy (mean batch / capacity).
    pub mean_occupancy: f64,
    /// Admissions the token budget deferred across the run (each kept
    /// queued and re-offered, never dropped). 0 with no budget.
    pub budget_deferrals: u64,
    /// Mean per-step prefill feed as a fraction of
    /// [`crate::scheduler::TokenBudget::max_prefill_tokens_per_step`];
    /// `None` when no budget is configured.
    pub budget_prefill_utilization: Option<f64>,
    /// Peak resident-token footprint as a fraction of
    /// [`crate::scheduler::TokenBudget::max_total_tokens`]; `None` when
    /// no budget is configured.
    pub budget_resident_utilization: Option<f64>,
    /// Prefix-cache lookups that restored a post-prefix snapshot
    /// (each one skipped that prefix's whole prefill for one state
    /// move). 0 with the cache off.
    pub prefix_hits: u64,
    /// Prefix-cache lookups that found no snapshot (the requester
    /// prefills and harvests it for its successors). 0 with the cache
    /// off.
    pub prefix_misses: u64,
    /// Per-model slices, indexed by registry id (one entry per
    /// registered model, including models that served no request).
    pub per_model: Vec<ModelBreakdown>,
    /// Per-priority-class slices, most urgent first (one entry per
    /// class in [`Priority::ALL`], including empty classes).
    pub per_class: Vec<ClassBreakdown>,
    /// Per-step observations for cost models.
    pub trace: RunTrace,
}

impl ServeReport {
    /// Decode tokens per engine step — the hardware-free throughput.
    pub fn tokens_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.generated_tokens as f64 / self.steps as f64
        }
    }

    /// Fraction of deadline-carrying requests that completed within
    /// their budget (`None` when the run had no deadline traffic) — the
    /// metric deadline-aware policies compete on.
    pub fn deadline_hit_rate(&self) -> Option<f64> {
        if self.deadline_total == 0 {
            None
        } else {
            Some(self.deadline_hits as f64 / self.deadline_total as f64)
        }
    }

    /// Fraction of requests that left the engine with a *service*
    /// outcome rather than an infrastructure one: everything except
    /// [`crate::request::FinishReason::Failed`] and
    /// [`crate::request::FinishReason::Rejected`] counts as available
    /// (a deadline eviction is the scheduler doing its job; a fault or
    /// a shed is the service failing the client). `None` before any
    /// request finishes. The chaos study's headline number.
    pub fn availability(&self) -> Option<f64> {
        let total =
            self.completed + self.evicted + self.cancellations + self.failed + self.rejected;
        if total == 0 {
            None
        } else {
            Some(1.0 - (self.failed + self.rejected) as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_set() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&xs);
        assert_eq!(p.n, 100);
        assert!((p.mean - 50.5).abs() < 1e-9);
        assert!((p.p50 - 51.0).abs() <= 1.0);
        assert!((p.p90 - 90.0).abs() <= 1.0);
        assert!((p.p99 - 99.0).abs() <= 1.0);
        assert_eq!(p.max, 100.0);
    }

    #[test]
    fn empty_samples_yield_zeros() {
        let p = Percentiles::of(&[]);
        assert_eq!(p.n, 0);
        assert_eq!(p.max, 0.0);
    }

    #[test]
    fn trace_aggregates() {
        let t = RunTrace {
            batch_per_step: vec![0, 2, 4, 0, 6],
            processed_per_step: vec![0, 5, 7, 0, 6],
            tokens_per_step: vec![0, 2, 4, 0, 6],
            queue_depth_per_step: vec![5, 3, 1, 0, 0],
            ..Default::default()
        };
        assert_eq!(t.steps(), 5);
        assert_eq!(t.peak_batch(), 6);
        assert!((t.mean_batch() - 4.0).abs() < 1e-9);
    }
}
