//! Engine-side observability: the metrics registry, step-phase span
//! tracing, and flight recorder wired into [`crate::engine::ServeEngine`].
//!
//! [`EngineObs`] bundles the three `lightmamba_obs` primitives and owns
//! every engine-specific registration: which counters exist, which
//! histogram buckets latency lands in, which lifecycle transitions the
//! flight recorder keeps. The engine carries an `Option<Box<EngineObs>>`
//! — `None` (the default) costs one branch per hook, and
//! [`crate::engine::ServeEngine::enable_obs`] turns the whole layer on.
//!
//! Everything the engine calls per step is allocation-free after
//! construction: counters and gauges are index-addressed, histograms
//! scan fixed buckets, spans and flight-recorder entries land in
//! pre-allocated bounded storage. The allocating operations —
//! [`EngineObs::exposition`], the Chrome-trace renderers, and
//! [`EngineObs::flight_dump`] — are explicit cold paths a caller invokes
//! after (or outside) the serving loop. The one exception is deliberate:
//! an SLO violation captures a flight-recorder dump at the moment of the
//! breach, because a violated SLO is precisely not steady state.
//!
//! Two clocks appear in the exported trace. The *wall-clock* lane is
//! what the host spent simulating each phase ([`std::time::Instant`]).
//! The *virtual* lane restates the same steps in accelerator-projected
//! seconds from the cost models
//! ([`crate::accel_cost::StepCostModel::trace_step_seconds`]), so a
//! trace viewer shows host cost and modeled-hardware cost side by side
//! on one time axis each.

use lightmamba_obs::recorder::{FaultKind, FlightRecorder, LifecyclePhase, StepRecord};
use lightmamba_obs::registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};
use lightmamba_obs::trace::{ChromeTraceBuilder, SpanRecorder};

use crate::engine::SessionSnapshot;
use crate::request::{Completion, FinishReason};

/// Capacity and SLO knobs of an [`EngineObs`]. The defaults suit the
/// bench harnesses: ~1.5k steps of spans, 512 steps of flight record,
/// 4k lifecycle events, no SLOs.
#[derive(Debug, Clone, Copy)]
pub struct ObsConfig {
    /// Maximum spans retained (≈10 per step; beyond this, spans are
    /// counted as dropped, not stored).
    pub span_capacity: usize,
    /// Step records the flight recorder retains.
    pub step_records: usize,
    /// Lifecycle events the flight recorder retains.
    pub lifecycle_events: usize,
    /// Optional TTFT SLO in engine steps: a completion whose TTFT
    /// exceeds it counts as a violation and snapshots the flight
    /// recorder.
    pub slo_ttft_steps: Option<u64>,
    /// Optional end-to-end SLO in engine steps, same semantics.
    pub slo_e2e_steps: Option<u64>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            span_capacity: 16_384,
            step_records: 512,
            lifecycle_events: 4_096,
            slo_ttft_steps: None,
            slo_e2e_steps: None,
        }
    }
}

/// Pre-registered metric ids — resolved once at
/// [`EngineObs::new`], index-addressed ever after.
#[derive(Debug)]
struct Ids {
    steps: CounterId,
    decode_tokens: CounterId,
    prefill_tokens: CounterId,
    admissions: CounterId,
    preemptions: CounterId,
    resumes: CounterId,
    cancellations: CounterId,
    expiries: CounterId,
    completions: CounterId,
    state_moves: CounterId,
    session_parks: CounterId,
    session_restores: CounterId,
    slo_violations: CounterId,
    requests_failed: CounterId,
    requests_rejected: CounterId,
    backend_faults: CounterId,
    quarantine_entered: CounterId,
    quarantine_recovered: CounterId,
    degradation_level: GaugeId,
    pool_threads: GaugeId,
    par_shards: CounterId,
    queue_depth: GaugeId,
    paused_depth: GaugeId,
    active_seqs: GaugeId,
    free_slots: GaugeId,
    step_wall_us: HistogramId,
    step_batch: HistogramId,
    ttft_steps: HistogramId,
    e2e_steps: HistogramId,
    queue_steps: HistogramId,
    prefix_hits: CounterId,
    prefix_misses: CounterId,
    budget_deferrals: CounterId,
    budget_deferred: HistogramId,
    /// Per-model token-advance counters, indexed by
    /// [`crate::registry::ModelId`].
    model_tokens: Vec<CounterId>,
    /// Per-model state-move counters, same index.
    model_state_moves: Vec<CounterId>,
}

/// The observability state of one engine run. Obtain via
/// [`crate::engine::ServeEngine::enable_obs`] /
/// [`crate::engine::ServeEngine::obs`] /
/// [`crate::engine::ServeEngine::take_obs`].
#[derive(Debug)]
pub struct EngineObs {
    /// The metrics registry (counters/gauges/histograms; render with
    /// [`EngineObs::exposition`]).
    pub metrics: MetricsRegistry,
    /// Per-step phase spans (render with [`EngineObs::chrome_trace`]).
    pub spans: SpanRecorder,
    /// Recent steps and request lifecycle transitions.
    pub flight: FlightRecorder,
    ids: Ids,
    slo_ttft_steps: Option<u64>,
    slo_e2e_steps: Option<u64>,
    slo_violations: u64,
    /// Flight-recorder snapshot captured at the *first* SLO violation
    /// (later breaches only count — the interesting state is the one
    /// that produced the first miss).
    slo_dump: Option<String>,
}

impl EngineObs {
    /// Registers the full engine metric set. `model_names` are the
    /// registry's backend names, in [`crate::registry::ModelId`] order —
    /// each gets labeled per-model token and state-move counters.
    pub fn new(cfg: ObsConfig, model_names: &[&str]) -> Self {
        let mut m = MetricsRegistry::new();
        let ids = Ids {
            steps: m.counter("engine_steps_total", "Engine steps executed."),
            decode_tokens: m.counter("engine_decode_tokens_total", "Decode tokens sampled."),
            prefill_tokens: m.counter(
                "engine_prefill_tokens_total",
                "Prompt tokens consumed by chunked prefill.",
            ),
            admissions: m.counter(
                "engine_admissions_total",
                "Requests admitted from the waiting queue (session resumes included).",
            ),
            preemptions: m.counter(
                "engine_preemptions_total",
                "Residents paused out of their slot by the policy.",
            ),
            resumes: m.counter(
                "engine_resumes_total",
                "Paused sequences restored into a slot.",
            ),
            cancellations: m.counter(
                "engine_cancellations_total",
                "Requests evicted by client cancellation.",
            ),
            expiries: m.counter(
                "engine_expiries_total",
                "Requests evicted on deadline (doomed evictions included).",
            ),
            completions: m.counter(
                "engine_completions_total",
                "Requests completed normally (max-tokens or EOS).",
            ),
            state_moves: m.counter(
                "engine_state_moves_total",
                "Fixed-size recurrent states moved (pause/resume/park/restore).",
            ),
            session_parks: m.counter(
                "engine_session_parks_total",
                "Session turns whose final state was parked for the next turn.",
            ),
            session_restores: m.counter(
                "engine_session_restores_total",
                "Admissions that restored a parked session state.",
            ),
            slo_violations: m.counter(
                "engine_slo_violations_total",
                "Completions that breached a configured TTFT/e2e SLO.",
            ),
            requests_failed: m.counter(
                "engine_requests_failed_total",
                "Requests retired by backend faults (contained errors/panics).",
            ),
            requests_rejected: m.counter(
                "engine_requests_rejected_total",
                "Arrivals shed by overload protection.",
            ),
            backend_faults: m.counter(
                "engine_backend_faults_total",
                "Backend faults contained (error returns plus caught panics).",
            ),
            quarantine_entered: m.counter(
                "engine_quarantine_entered_total",
                "Backend quarantine entries (first faults and half-open re-faults).",
            ),
            quarantine_recovered: m.counter(
                "engine_quarantine_recovered_total",
                "Backend quarantine recoveries (half-open canary survived).",
            ),
            degradation_level: m.gauge(
                "engine_degradation_level",
                "Current rung of the overload degradation ladder (0 = nominal).",
            ),
            pool_threads: m.gauge(
                "engine_pool_threads",
                "Worker threads executing batched model steps (1 = sequential).",
            ),
            par_shards: m.counter(
                "engine_par_shards_total",
                "Worker shards sub-batches were split across (1 per sub-batch when sequential).",
            ),
            queue_depth: m.gauge("engine_queue_depth", "Waiting requests at step close."),
            paused_depth: m.gauge("engine_paused_depth", "Paused sequences at step close."),
            active_seqs: m.gauge(
                "engine_active_sequences",
                "Resident sequences at step close.",
            ),
            free_slots: m.gauge("engine_free_slots", "Free slots at step close."),
            step_wall_us: m.histogram(
                "engine_step_wall_us",
                "Wall-clock engine step latency (microseconds).",
                &[
                    10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 20_000.0, 100_000.0,
                ],
            ),
            step_batch: m.histogram(
                "engine_step_batch",
                "Resident batch size per step.",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            ),
            ttft_steps: m.histogram(
                "engine_ttft_steps",
                "Time-to-first-token of completions (engine steps).",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0],
            ),
            e2e_steps: m.histogram(
                "engine_e2e_steps",
                "End-to-end latency of completions (engine steps).",
                &[4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1_024.0],
            ),
            queue_steps: m.histogram(
                "engine_queue_steps",
                "Queueing delay of completions (engine steps).",
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
            ),
            prefix_hits: m.counter(
                "engine_prefix_hits_total",
                "Admissions that restored a cached shared-prefix state.",
            ),
            prefix_misses: m.counter(
                "engine_prefix_misses_total",
                "Shared-prefix admissions that found no cached state (harvested one).",
            ),
            budget_deferrals: m.counter(
                "engine_budget_deferrals_total",
                "Admissions deferred by the token budget (kept queued).",
            ),
            budget_deferred: m.histogram(
                "engine_budget_deferred",
                "Admissions deferred by the token budget, per step.",
                &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
            ),
            model_tokens: model_names
                .iter()
                .map(|name| {
                    m.counter_labeled(
                        "engine_model_tokens_total",
                        &format!("model=\"{name}\""),
                        "Token-advances processed, per backend.",
                    )
                })
                .collect(),
            model_state_moves: model_names
                .iter()
                .map(|name| {
                    m.counter_labeled(
                        "engine_model_state_moves_total",
                        &format!("model=\"{name}\""),
                        "State moves attributed to a backend.",
                    )
                })
                .collect(),
        };
        EngineObs {
            metrics: m,
            spans: SpanRecorder::with_capacity(cfg.span_capacity),
            flight: FlightRecorder::new(cfg.step_records, cfg.lifecycle_events),
            ids,
            slo_ttft_steps: cfg.slo_ttft_steps,
            slo_e2e_steps: cfg.slo_e2e_steps,
            slo_violations: 0,
            slo_dump: None,
        }
    }

    /// Records one request lifecycle transition (hot path).
    #[inline]
    pub(crate) fn lifecycle(&mut self, id: u64, step: u64, phase: LifecyclePhase) {
        self.flight.record_lifecycle(id, step, phase);
    }

    /// Counts an admission that restored a parked session state.
    #[inline]
    pub(crate) fn session_restore(&mut self) {
        self.metrics.inc(self.ids.session_restores);
    }

    /// Counts an admission that restored a cached shared-prefix state.
    #[inline]
    pub(crate) fn prefix_hit(&mut self) {
        self.metrics.inc(self.ids.prefix_hits);
    }

    /// Counts a shared-prefix admission that missed the cache (and will
    /// harvest a snapshot at its prefix boundary).
    #[inline]
    pub(crate) fn prefix_miss(&mut self) {
        self.metrics.inc(self.ids.prefix_misses);
    }

    /// Folds one step's token-budget deferrals into the counter and the
    /// per-step histogram (hot path, allocation-free).
    #[inline]
    pub(crate) fn budget_deferred(&mut self, n: u64) {
        self.metrics.add(self.ids.budget_deferrals, n);
        self.metrics.observe(self.ids.budget_deferred, n as f64);
    }

    /// Records one fault-domain transition: counts it and lands it in
    /// the flight recorder's fault ring (hot path, allocation-free —
    /// fault steps are rare but should never themselves allocate).
    #[inline]
    pub(crate) fn fault_event(&mut self, step: u64, model: u32, kind: FaultKind) {
        match kind {
            FaultKind::BackendError | FaultKind::BackendPanic => {
                self.metrics.inc(self.ids.backend_faults);
            }
            FaultKind::Quarantined => self.metrics.inc(self.ids.quarantine_entered),
            FaultKind::Recovered => self.metrics.inc(self.ids.quarantine_recovered),
            FaultKind::HalfOpen => {}
        }
        self.flight.record_fault(step, model, kind);
    }

    /// Publishes the degradation ladder's current rung.
    #[inline]
    pub(crate) fn degradation(&mut self, level: u8) {
        self.metrics.set(self.ids.degradation_level, level as f64);
    }

    /// Records one step's parallel-execution activity: the pool width
    /// and how many worker shards this step's sub-batches split across
    /// (hot path, allocation-free).
    #[inline]
    pub(crate) fn pool_activity(&mut self, threads: usize, shards: u64) {
        self.metrics.set(self.ids.pool_threads, threads as f64);
        self.metrics.add(self.ids.par_shards, shards);
    }

    /// Closes one engine step: folds the step's record, the requests
    /// that left the engine this step, its session parks, and its
    /// per-model work into counters, histograms, and the flight
    /// recorder. `rec.cancelled`/`rec.expired` are derived here from the
    /// completion delta. Allocation-free except on an SLO breach.
    pub(crate) fn close_step(
        &mut self,
        mut rec: StepRecord,
        finished: &[Completion],
        parks: &[(u64, SessionSnapshot)],
        sub_processed: &[usize],
        sub_state_moves: &[usize],
    ) {
        let m = &mut self.metrics;
        m.inc(self.ids.steps);
        m.add(self.ids.decode_tokens, rec.decode_tokens as u64);
        m.add(self.ids.prefill_tokens, rec.prefill_tokens as u64);
        m.add(self.ids.admissions, rec.admitted as u64);
        m.add(self.ids.preemptions, rec.preempted as u64);
        m.add(self.ids.resumes, rec.resumed as u64);
        m.add(self.ids.state_moves, rec.state_moves as u64);
        m.set(self.ids.queue_depth, rec.queue_depth as f64);
        m.set(self.ids.paused_depth, rec.paused_depth as f64);
        m.set(self.ids.active_seqs, rec.batch as f64);
        m.set(self.ids.free_slots, rec.free_slots as f64);
        m.observe(self.ids.step_wall_us, rec.wall_ns as f64 / 1e3);
        m.observe(self.ids.step_batch, rec.batch as f64);
        for (mid, &tokens) in sub_processed.iter().enumerate() {
            if let Some(&id) = self.ids.model_tokens.get(mid) {
                m.add(id, tokens as u64);
            }
        }
        for (mid, &moves) in sub_state_moves.iter().enumerate() {
            if let Some(&id) = self.ids.model_state_moves.get(mid) {
                m.add(id, moves as u64);
            }
        }

        let mut violated = false;
        for c in finished {
            let phase = match c.finish {
                FinishReason::MaxTokens | FinishReason::Eos => LifecyclePhase::Done,
                FinishReason::Cancelled => LifecyclePhase::Cancelled,
                FinishReason::DeadlineExceeded => LifecyclePhase::Expired,
                FinishReason::Failed => LifecyclePhase::Failed,
                FinishReason::Rejected => LifecyclePhase::Rejected,
            };
            match phase {
                LifecyclePhase::Done => m.inc(self.ids.completions),
                LifecyclePhase::Cancelled => {
                    rec.cancelled += 1;
                    m.inc(self.ids.cancellations);
                }
                LifecyclePhase::Expired => {
                    rec.expired += 1;
                    m.inc(self.ids.expiries);
                }
                LifecyclePhase::Failed => m.inc(self.ids.requests_failed),
                LifecyclePhase::Rejected => m.inc(self.ids.requests_rejected),
                _ => unreachable!("finish reasons map to terminal phases"),
            }
            self.flight.record_lifecycle(c.id, rec.step, phase);
            if phase != LifecyclePhase::Done {
                continue;
            }
            let ttft = c.ttft_steps();
            let e2e = c.e2e_steps();
            if let Some(t) = ttft {
                m.observe(self.ids.ttft_steps, t as f64);
            }
            if let Some(e) = e2e {
                m.observe(self.ids.e2e_steps, e as f64);
            }
            if let Some(q) = c.queue_steps() {
                m.observe(self.ids.queue_steps, q as f64);
            }
            let ttft_miss = matches!((self.slo_ttft_steps, ttft), (Some(slo), Some(t)) if t > slo);
            let e2e_miss = matches!((self.slo_e2e_steps, e2e), (Some(slo), Some(e)) if e > slo);
            if ttft_miss || e2e_miss {
                m.inc(self.ids.slo_violations);
                self.slo_violations += 1;
                violated = true;
            }
        }
        for &(sid, _) in parks {
            m.inc(self.ids.session_parks);
            self.flight
                .record_lifecycle(sid, rec.step, LifecyclePhase::Parked);
        }
        self.flight.record_step(rec);
        // Snapshot *after* recording the step, so the dump shows the
        // offending step itself; first breach only.
        if violated && self.slo_dump.is_none() {
            self.slo_dump = Some(self.flight.dump());
        }
    }

    /// Completions that breached a configured SLO so far.
    pub fn slo_violations(&self) -> u64 {
        self.slo_violations
    }

    /// The flight-recorder dump captured at the first SLO violation, if
    /// any (taking it resets the capture, arming the next breach).
    pub fn take_slo_dump(&mut self) -> Option<String> {
        self.slo_dump.take()
    }

    /// Renders the Prometheus-style text exposition snapshot (cold
    /// path).
    pub fn exposition(&self) -> String {
        self.metrics.expose()
    }

    /// Renders the current flight-recorder window as readable text
    /// (cold path).
    pub fn flight_dump(&self) -> String {
        self.flight.dump()
    }

    /// Renders the recorded phase spans as Chrome trace-event JSON, one
    /// wall-clock lane (cold path).
    pub fn chrome_trace(&self) -> String {
        self.spans.chrome_trace()
    }

    /// Renders a two-lane Chrome trace: the wall-clock phase spans plus
    /// a virtual-time lane in which step *i* lasts `step_seconds[i]`
    /// accelerator-projected seconds (from
    /// [`crate::accel_cost::StepCostModel::trace_step_seconds`] or its
    /// multiplexed counterpart), prefix-summed onto its own axis. Cold
    /// path.
    pub fn chrome_trace_with_virtual(&self, step_seconds: &[f64]) -> String {
        let mut b = ChromeTraceBuilder::new();
        b.process_name(1, "wall clock (host)");
        b.process_name(2, "virtual (accelerator-projected)");
        for s in self.spans.spans() {
            b.span(s, 1, 1);
        }
        let mut now_us = 0.0f64;
        for (i, &s) in step_seconds.iter().enumerate() {
            let dur_us = s * 1e6;
            // Idle steps are free on the accelerator; skip their
            // zero-width events so the lane stays readable.
            if dur_us > 0.0 {
                b.complete_event(
                    "step",
                    "virtual",
                    2,
                    1,
                    now_us,
                    dur_us,
                    &[("step", i as f64)],
                );
            }
            now_us += dur_us;
        }
        b.finish()
    }
}
