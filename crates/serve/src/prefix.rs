//! The shared-prefix state cache: post-prefix snapshots, restored
//! instead of re-prefilled.
//!
//! A Mamba2 prompt prefix compresses into one fixed-size
//! [`ModelState`](lightmamba_model::ModelState) — there is no KV cache
//! growing with prefix length — so a cache entry for a K-token system
//! prompt costs the same slab as one for a 4-token one. When a request
//! arrives carrying [`crate::request::GenRequest::shared_prefix`], the
//! engine looks its prefix up here: a hit restores the snapshot into
//! the freshly claimed slot ([`DecodeBackend::restore_state`]
//! semantics, one state-transfer DMA) and prefill begins *after* the
//! prefix; a miss marks the sequence for harvest, and the engine
//! snapshots its state the moment prefill crosses the prefix boundary
//! — exactly the clip-at-boundary feeding that makes chunked prefill
//! bit-exact guarantees the snapshot equals a run that prefilled the
//! prefix alone.
//!
//! Entries are keyed by `(model, FNV-1a hash of the prefix tokens)`
//! and verified against the stored token run on lookup, so a hash
//! collision degrades to a miss, never a wrong state. Eviction is the
//! same tick-LRU as the session store
//! ([`crate::frontend::SessionStore`]): bounded footprint is
//! `capacity` state slabs, full stop.
//!
//! [`DecodeBackend::restore_state`]: crate::backend::DecodeBackend::restore_state

use std::collections::HashMap;

use crate::backend::PausedState;

/// FNV-1a over the prefix tokens' little-endian bytes. Deterministic
/// across runs and platforms (unlike `DefaultHasher`), so cache keys —
/// and therefore hit/miss traces — are reproducible, which the
/// bit-identity proptests rely on. Allocation-free.
pub fn hash_prefix(tokens: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        for b in t.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[derive(Debug)]
struct Entry {
    tick: u64,
    /// The exact token run this entry's state summarizes — compared on
    /// lookup so a hash collision is a miss, not a wrong restore.
    prefix: Vec<u32>,
    state: PausedState,
}

/// A capacity-bounded LRU map from `(model, prefix-hash)` to the
/// post-prefix [`PausedState`]. See the [module docs](self) for the
/// protocol; see [`crate::engine::EngineConfig::prefix_cache`] to turn
/// it on.
#[derive(Debug)]
pub struct PrefixCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<(usize, u64), Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PrefixCache {
    /// An empty cache holding at most `capacity` snapshots.
    /// `capacity` must be > 0 (a zero-capacity cache would harvest
    /// states only to drop them — turn the cache off instead).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefix cache capacity must be > 0");
        PrefixCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up the snapshot for `prefix` under `model`, refreshing its
    /// recency and counting the hit/miss. Allocation-free: one hash,
    /// one probe, one slice compare. Returns a borrow — the caller
    /// copies it into a slot ([`lightmamba_model::ModelState::copy_from`])
    /// rather than consuming it, so one entry serves any number of
    /// requests.
    pub fn lookup(&mut self, model: usize, prefix: &[u32]) -> Option<&PausedState> {
        self.tick += 1;
        let key = (model, hash_prefix(prefix));
        match self.entries.get_mut(&key) {
            Some(entry) if entry.prefix == prefix => {
                entry.tick = self.tick;
                self.hits += 1;
                Some(&entry.state)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether a snapshot for `prefix` under `model` is cached, without
    /// touching recency or the hit/miss counters (the engine's harvest
    /// check). Allocation-free.
    pub fn contains(&self, model: usize, prefix: &[u32]) -> bool {
        self.entries
            .get(&(model, hash_prefix(prefix)))
            .is_some_and(|e| e.prefix == prefix)
    }

    /// Caches the post-prefix snapshot, refreshing recency (an existing
    /// entry for the same prefix is replaced). When the cache would
    /// exceed its capacity, the least-recently-touched entry is
    /// evicted.
    pub fn insert(&mut self, model: usize, prefix: &[u32], state: PausedState) {
        self.tick += 1;
        self.entries.insert(
            (model, hash_prefix(prefix)),
            Entry {
                tick: self.tick,
                prefix: prefix.to_vec(),
                state,
            },
        );
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k)
                .expect("len > capacity >= 1 implies non-empty");
            self.entries.remove(&oldest);
            self.evictions += 1;
        }
    }

    /// Cached snapshots right now (always `<= capacity`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that restored a snapshot.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing (or a colliding entry).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries evicted by LRU pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightmamba_model::{MambaConfig, ModelState};

    fn state() -> PausedState {
        PausedState::new(ModelState::new(&MambaConfig::tiny()))
    }

    #[test]
    fn hash_is_deterministic_and_position_sensitive() {
        assert_eq!(hash_prefix(&[1, 2, 3]), hash_prefix(&[1, 2, 3]));
        assert_ne!(hash_prefix(&[1, 2, 3]), hash_prefix(&[3, 2, 1]));
        assert_ne!(hash_prefix(&[1, 2]), hash_prefix(&[1, 2, 3]));
        assert_ne!(hash_prefix(&[]), hash_prefix(&[0]));
    }

    #[test]
    fn lookup_counts_and_refreshes_recency() {
        let mut cache = PrefixCache::new(2);
        assert!(cache.lookup(0, &[1, 2]).is_none());
        assert_eq!(cache.misses(), 1);
        cache.insert(0, &[1, 2], state());
        cache.insert(0, &[3, 4], state());
        // Touch [1,2] so [3,4] becomes the LRU victim.
        assert!(cache.lookup(0, &[1, 2]).is_some());
        assert_eq!(cache.hits(), 1);
        cache.insert(0, &[5, 6], state());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.contains(0, &[1, 2]));
        assert!(!cache.contains(0, &[3, 4]));
        assert!(cache.contains(0, &[5, 6]));
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let mut cache = PrefixCache::new(3);
        for i in 0..50u32 {
            cache.insert(0, &[i], state());
            assert!(cache.len() <= 3);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 47);
        for i in 47..50u32 {
            assert!(cache.contains(0, &[i]));
        }
    }

    #[test]
    fn models_do_not_share_entries() {
        let mut cache = PrefixCache::new(4);
        cache.insert(0, &[1, 2], state());
        assert!(cache.contains(0, &[1, 2]));
        assert!(!cache.contains(1, &[1, 2]));
        assert!(cache.lookup(1, &[1, 2]).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_is_rejected() {
        let _ = PrefixCache::new(0);
    }
}
