//! Multi-model registry: named [`DecodeBackend`]s multiplexed over one
//! slot pool.
//!
//! The production pattern (cf. text-generation-inference's router) is an
//! engine generic over interchangeable model backends. Here several named
//! backends — e.g. the FP reference and its W4A4 quantization — share one
//! engine and one slot pool; each [`crate::request::GenRequest`] carries a
//! [`ModelId`] and the engine forms one sub-batch per model per step.
//!
//! Sharing a pool is sound because Mamba2's decode state depends only on
//! the model *configuration*, not the weights or their precision:
//! registration rejects a backend whose state shape differs from the
//! registry's first entry, so any slot can host any model's sequence.

use lightmamba_model::{MambaModel, ModelState};

use crate::backend::{DecodeBackend, FpBackend};
use crate::error::ServeError;

/// Index of a registered model; `GenRequest::model` names backends by it.
pub type ModelId = usize;

struct Entry<'m> {
    name: String,
    backend: Box<dyn DecodeBackend + 'm>,
}

/// Named decode backends sharing one slot pool.
///
/// The lifetime `'m` bounds borrowed backends ([`FpBackend`] borrows its
/// reference model); owning backends use `'static` implicitly.
#[derive(Default)]
pub struct ModelRegistry<'m> {
    entries: Vec<Entry<'m>>,
}

impl std::fmt::Debug for ModelRegistry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.entries.iter().map(|e| &e.name))
            .finish()
    }
}

impl<'m> ModelRegistry<'m> {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            entries: Vec::new(),
        }
    }

    /// A registry holding one FP backend named `"fp"` — the PR 1
    /// single-model engine, expressed in the backend layer.
    pub fn single(model: &'m MambaModel) -> Self {
        let mut r = ModelRegistry::new();
        r.register("fp", Box::new(FpBackend::new(model)))
            .expect("first registration cannot conflict");
        r
    }

    /// Registers a backend under `name` and returns its [`ModelId`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a duplicate name or a
    /// backend whose decode-state shape differs from the registry's
    /// existing entries (states must be slot-interchangeable).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        backend: Box<dyn DecodeBackend + 'm>,
    ) -> Result<ModelId, ServeError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ServeError::InvalidConfig(
                "model name must be non-empty".into(),
            ));
        }
        if self.entries.iter().any(|e| e.name == name) {
            return Err(ServeError::InvalidConfig(format!(
                "model {name:?} is already registered"
            )));
        }
        if let Some(first) = self.entries.first() {
            let a = first.backend.new_state();
            let b = backend.new_state();
            let compatible = a.layers.len() == b.layers.len()
                && a.layers.iter().zip(&b.layers).all(|(x, y)| {
                    x.h.len() == y.h.len()
                        && x.conv.channels() == y.conv.channels()
                        && x.conv.kernel() == y.conv.kernel()
                });
            if !compatible {
                return Err(ServeError::InvalidConfig(format!(
                    "model {name:?} has a decode-state shape incompatible with {:?}; \
                     backends sharing a slot pool must agree on state dimensions",
                    first.name
                )));
            }
        }
        self.entries.push(Entry { name, backend });
        Ok(self.entries.len() - 1)
    }

    /// Hands every registered backend the engine's shared worker pool
    /// ([`DecodeBackend::attach_pool`]); backends registered *after*
    /// this call stay sequential. [`crate::engine::ServeEngine`] calls
    /// it at construction when [`crate::engine::EngineConfig::threads`]
    /// asks for more than one thread.
    pub fn attach_pool(&mut self, pool: &std::sync::Arc<lightmamba_pool::WorkerPool>) {
        for e in &mut self.entries {
            e.backend.attach_pool(pool);
        }
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backend registered under `id`, if any.
    pub fn get(&self, id: ModelId) -> Option<&dyn DecodeBackend> {
        self.entries.get(id).map(|e| e.backend.as_ref())
    }

    /// The name registered under `id`, if any.
    pub fn name_of(&self, id: ModelId) -> Option<&str> {
        self.entries.get(id).map(|e| e.name.as_str())
    }

    /// Resolves a model name to its id.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] when no backend is registered
    /// under `name`.
    pub fn id_of(&self, name: &str) -> Result<ModelId, ServeError> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))
    }

    /// Iterates `(id, name, backend)` in registration order — the order
    /// sub-batches execute within one engine step.
    pub fn iter(&self) -> impl Iterator<Item = (ModelId, &str, &dyn DecodeBackend)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(id, e)| (id, e.name.as_str(), e.backend.as_ref()))
    }

    /// The registered model with the narrowest weight stream (lowest
    /// [`crate::backend::CostProfile::weight_bits`]) — e.g. the W4A4
    /// backend in an FP + W4A4 registry. The engine's degradation
    /// controller routes degradable requests here under sustained
    /// overload. Ties resolve to the earliest registration; `None` on
    /// an empty registry.
    pub fn cheapest_model(&self) -> Option<ModelId> {
        self.entries
            .iter()
            .enumerate()
            .map(|(id, e)| (id, e.backend.cost_profile().weight_bits))
            .fold(
                None,
                |best: Option<(ModelId, f64)>, (id, bits)| match best {
                    Some((_, b)) if b <= bits => best,
                    _ => Some((id, bits)),
                },
            )
            .map(|(id, _)| id)
    }

    /// A zeroed state shaped for the shared slot pool (from the first
    /// registered backend; registration guarantees all agree).
    ///
    /// # Panics
    ///
    /// Panics on an empty registry — the engine rejects that at
    /// construction.
    pub fn new_state(&self) -> ModelState {
        self.entries
            .first()
            .expect("registry must hold at least one model")
            .backend
            .new_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightmamba_model::MambaConfig;
    use lightmamba_quant::pipeline::{quantize_model, Method, QuantSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use crate::backend::W4A4Backend;

    fn tiny_model() -> MambaModel {
        MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(9)).unwrap()
    }

    #[test]
    fn registers_and_resolves_names() {
        let model = tiny_model();
        let q = quantize_model(&model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[]).unwrap();
        let mut reg = ModelRegistry::new();
        let fp = reg
            .register("fp", Box::new(FpBackend::new(&model)))
            .unwrap();
        let w4 = reg.register("w4a4", Box::new(W4A4Backend::new(q))).unwrap();
        assert_eq!((fp, w4), (0, 1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.id_of("w4a4").unwrap(), 1);
        assert_eq!(reg.name_of(0), Some("fp"));
        assert_eq!(reg.get(1).unwrap().name(), "w4a4");
    }

    #[test]
    fn cheapest_model_picks_the_narrowest_weight_stream() {
        let model = tiny_model();
        let q = quantize_model(&model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[]).unwrap();
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model)))
            .unwrap();
        let w4 = reg.register("w4a4", Box::new(W4A4Backend::new(q))).unwrap();
        assert_eq!(reg.cheapest_model(), Some(w4));
        assert_eq!(ModelRegistry::new().cheapest_model(), None);
    }

    #[test]
    fn unknown_model_name_is_rejected() {
        let model = tiny_model();
        let reg = ModelRegistry::single(&model);
        let err = reg.id_of("nonexistent").unwrap_err();
        assert!(matches!(err, ServeError::UnknownModel(ref n) if n == "nonexistent"));
    }

    #[test]
    fn duplicate_name_is_rejected() {
        let model = tiny_model();
        let mut reg = ModelRegistry::single(&model);
        let err = reg
            .register("fp", Box::new(FpBackend::new(&model)))
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }

    #[test]
    fn incompatible_state_shape_is_rejected() {
        let model = tiny_model();
        let mut other_cfg = MambaConfig::tiny();
        other_cfg.d_state = 32;
        let other = MambaModel::synthetic(other_cfg, &mut StdRng::seed_from_u64(2)).unwrap();
        let mut reg = ModelRegistry::single(&model);
        let err = reg
            .register("other", Box::new(FpBackend::new(&other)))
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)));
    }
}
