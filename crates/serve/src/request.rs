//! Generation requests and their lifecycle records.

use lightmamba_model::sampler::Sampler;

use crate::registry::ModelId;

/// Unique id of a request within one engine run.
pub type RequestId = u64;

/// Strict priority class of a request. Lower classes are more urgent:
/// [`Priority::Interactive`] beats [`Priority::Standard`] which beats
/// [`Priority::Batch`], both in admission order and — under the
/// *preemptive* priority policy
/// ([`crate::scheduler::PriorityClasses::preemptive`]) — in residency:
/// a higher-class arrival may pause a strictly lower-class resident
/// sequence and take its slot. The default policies are non-preemptive
/// (classes affect admission order only), in which case starvation of
/// low classes is bounded by request service times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-critical traffic (chat turns, autocompletions).
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput traffic that tolerates queueing (offline
    /// summarization, evals).
    Batch,
}

impl Priority {
    /// Every class, most urgent first (report order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Class name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

/// A user generation request as admitted by the engine.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Unique id (admission ties break on it).
    pub id: RequestId,
    /// Which registered model serves this request (see
    /// [`crate::registry::ModelRegistry`]); 0 is the first-registered
    /// backend, so single-model engines need not set it.
    pub model: ModelId,
    /// Strict priority class (admission order under the priority
    /// policy; ignored by FIFO/EDF/WFQ).
    pub priority: Priority,
    /// Prompt token ids (must be non-empty).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate after the prompt.
    pub max_new_tokens: usize,
    /// Decoding strategy.
    pub sampler: Sampler,
    /// Seed of the request's private sampling RNG. Keeping sampling
    /// per-request makes outputs independent of how the scheduler
    /// interleaves sequences — the property the equivalence tests pin.
    pub seed: u64,
    /// Engine step at which the request arrives.
    pub arrival_step: u64,
    /// Optional latency budget in engine steps from arrival; the engine
    /// evicts requests that exceed it.
    pub deadline_steps: Option<u64>,
    /// Optional stop token ending generation early.
    pub eos_token: Option<u32>,
    /// Optional multi-turn session this request belongs to. On normal
    /// completion (max-tokens or EOS) the engine snapshots the
    /// sequence's final fixed-size state
    /// ([`crate::engine::SessionSnapshot`]) so the session's next turn
    /// can resume from it instead of re-prefilling the whole
    /// conversation — the serving payoff of Mamba's constant-size
    /// state. `None` (the default) opts out.
    pub session: Option<u64>,
    /// Number of leading prompt tokens that form a *shared* prefix (a
    /// system prompt) other requests also carry. When the engine's
    /// prefix cache is on ([`crate::engine::EngineConfig::prefix_cache`])
    /// the post-prefix state is snapshotted once and every later request
    /// with the same prefix restores it — one state-transfer DMA instead
    /// of re-prefilling those tokens. Must be shorter than the prompt
    /// (at least one token must remain to feed); out-of-range markers
    /// are ignored. `None` (the default) opts out; with the cache off
    /// the marker is inert and outputs are bit-identical either way.
    pub shared_prefix: Option<usize>,
}

impl GenRequest {
    /// A greedy-decoded request with no deadline, arriving at step 0.
    pub fn greedy(id: RequestId, prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        GenRequest {
            id,
            model: 0,
            priority: Priority::Standard,
            prompt,
            max_new_tokens,
            sampler: Sampler::Greedy,
            seed: id,
            arrival_step: 0,
            deadline_steps: None,
            eos_token: None,
            session: None,
            shared_prefix: None,
        }
    }

    /// Retargets the request at a registered model.
    pub fn on_model(mut self, model: ModelId) -> Self {
        self.model = model;
        self
    }

    /// Assigns a strict priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets a latency budget in engine steps from arrival.
    pub fn with_deadline(mut self, deadline_steps: u64) -> Self {
        self.deadline_steps = Some(deadline_steps);
        self
    }

    /// Tags the request as one turn of a multi-turn session: its final
    /// state will be kept for the session's next turn (see
    /// [`GenRequest::session`]).
    pub fn with_session(mut self, session: u64) -> Self {
        self.session = Some(session);
        self
    }

    /// Marks the first `len` prompt tokens as a shared prefix eligible
    /// for the engine's prefix cache (see [`GenRequest::shared_prefix`]).
    pub fn with_shared_prefix(mut self, len: usize) -> Self {
        self.shared_prefix = Some(len);
        self
    }

    /// Absolute engine step at which the engine evicts this request
    /// (`None` when it carries no deadline). EDF orders the queue by it.
    pub fn absolute_deadline(&self) -> Option<u64> {
        self.deadline_steps
            .map(|d| self.arrival_step.saturating_add(d))
    }

    /// Fewest engine steps from admission to completion, given a
    /// prefill-chunk budget of `prefill_chunk` prompt tokens per step:
    /// `ceil(prompt / chunk)` prefill steps (the last of which samples
    /// the first token) plus one step per remaining token. A request
    /// with a stop token may finish after its first sample, so its
    /// minimum is the prefill alone.
    pub fn min_steps_to_complete(&self, prefill_chunk: usize) -> u64 {
        self.min_steps_remaining(0, 0, prefill_chunk)
    }

    /// [`GenRequest::min_steps_to_complete`] for a sequence with partial
    /// progress — `pos` prompt tokens already consumed and `generated`
    /// tokens already sampled. This is the feasibility math for paused
    /// sequences: a preempted request's deadline slack is judged on the
    /// work it still *owes*, not on its full length.
    pub fn min_steps_remaining(&self, pos: usize, generated: usize, prefill_chunk: usize) -> u64 {
        let chunk = prefill_chunk.max(1);
        let remaining_prompt = self.prompt.len().saturating_sub(pos);
        let min_new = if self.eos_token.is_some() {
            1
        } else {
            self.max_new_tokens.max(1)
        };
        let decode_needed = (min_new as u64).saturating_sub(generated as u64);
        if remaining_prompt > 0 {
            // The step consuming the final prompt chunk also samples
            // the first token, hence the `- 1`.
            remaining_prompt.div_ceil(chunk) as u64 + decode_needed.max(1) - 1
        } else {
            // Mid-decode: one token per step, at least one more step
            // (an unfinished sequence always owes its next sample).
            decode_needed.max(1)
        }
    }
}

/// Why a request left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated `max_new_tokens`.
    MaxTokens,
    /// Produced the request's stop token.
    Eos,
    /// Evicted after exceeding its deadline, or evicted early by a
    /// deadline-aware policy that proved the deadline unmeetable.
    DeadlineExceeded,
    /// Evicted because the client cancelled the request (or its stream
    /// handle was dropped mid-flight). Any tokens already generated are
    /// kept in the completion record, but the request counts as neither
    /// completed nor deadline-evicted, and any work it consumed is
    /// reported as wasted (see
    /// [`crate::metrics::ServeReport::wasted_token_advances`]).
    Cancelled,
    /// Retired because its backend faulted (an error return or a caught
    /// panic) while the request was resident. Tokens generated before
    /// the fault are kept in the completion record; the slot was
    /// reclaimed and its recurrent state discarded (slot states are
    /// re-zeroed on reuse, so torn state cannot leak). The request
    /// counts as neither completed nor deadline-evicted.
    Failed,
    /// Shed at admission by overload protection (bounded queue or the
    /// degradation ladder) — the request never held a slot and did no
    /// work. [`Completion::retry_after_steps`] carries the engine's
    /// back-off hint.
    Rejected,
}

/// Completion record of one request, timestamped in engine steps.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's id.
    pub id: RequestId,
    /// The model that served (or would have served) the request.
    pub model: ModelId,
    /// The request's priority class.
    pub priority: Priority,
    /// Generated tokens (prompt excluded).
    pub tokens: Vec<u32>,
    /// Why generation ended.
    pub finish: FinishReason,
    /// Step the request arrived.
    pub arrival_step: u64,
    /// The request's latency budget, if it carried one (deadline-hit
    /// accounting keys on it).
    pub deadline_steps: Option<u64>,
    /// Step the request was admitted to a slot (`None` when it expired
    /// in the waiting queue without ever being admitted).
    pub admitted_step: Option<u64>,
    /// Step the first generated token appeared (`None` when evicted
    /// during prefill).
    pub first_token_step: Option<u64>,
    /// Step the request left the engine.
    pub finished_step: u64,
    /// Times the request was preempted (paused out of its slot) while
    /// resident.
    pub preemptions: u32,
    /// Engine steps spent paused across all preemption episodes
    /// (admitted but holding no slot). Counted inside
    /// [`Completion::e2e_steps`] — wall time is wall time — but
    /// excluded from TTFT, and reported separately so preemption cost
    /// is visible per request.
    pub paused_steps: u64,
    /// The subset of [`Completion::paused_steps`] accrued before the
    /// first token was sampled — excluded from
    /// [`Completion::ttft_steps`], since paused time is a scheduling
    /// decision, not time the request's first token was being computed.
    pub paused_steps_before_first_token: u64,
    /// For [`FinishReason::Rejected`] completions: the engine's hint
    /// for how many steps the client should wait before resubmitting
    /// (derived from queue pressure at shed time). `None` otherwise.
    pub retry_after_steps: Option<u64>,
}

impl Completion {
    /// Time-to-first-token in engine steps: arrival → first token,
    /// **minus** any steps the request spent paused in between
    /// (preemption before the first token postpones the stamp without
    /// doing first-token work, so counting it would charge scheduling
    /// decisions to model latency). Returns `None` when no token was
    /// produced, or when the stamps are inconsistent — a first-token
    /// step before the arrival, or paused time exceeding the wall time
    /// (both assert in debug builds instead of silently wrapping, the
    /// same audit as the arrival/admission stamps).
    pub fn ttft_steps(&self) -> Option<u64> {
        self.first_token_step.and_then(|t| {
            let wall = t.checked_sub(self.arrival_step);
            debug_assert!(
                wall.is_some(),
                "first_token_step {t} precedes arrival_step {}",
                self.arrival_step
            );
            let d = wall.and_then(|w| w.checked_sub(self.paused_steps_before_first_token));
            debug_assert!(
                d.is_some(),
                "paused_steps_before_first_token {} exceeds wall TTFT of request {}",
                self.paused_steps_before_first_token,
                self.id
            );
            d
        })
    }

    /// Queueing delay in engine steps: arrival → *first* admission
    /// (`None` when the request was never admitted or the admission
    /// stamp precedes the arrival — the latter asserts in debug
    /// builds). A resumed request keeps its original admission stamp:
    /// time spent paused is a service interruption, reported via
    /// [`Completion::paused_steps`], not queueing — so queue-time
    /// percentiles still measure pure admission pressure.
    pub fn queue_steps(&self) -> Option<u64> {
        self.admitted_step.and_then(|a| {
            let d = a.checked_sub(self.arrival_step);
            debug_assert!(
                d.is_some(),
                "admitted_step {a} precedes arrival_step {}",
                self.arrival_step
            );
            d
        })
    }

    /// End-to-end latency in engine steps — wall time from arrival to
    /// exit, paused episodes included (the user waited through them).
    /// Returns `None` when the exit stamp precedes the arrival stamp
    /// (asserts in debug builds instead of silently wrapping, the same
    /// audit as the TTFT and queueing accessors).
    pub fn e2e_steps(&self) -> Option<u64> {
        let d = self.finished_step.checked_sub(self.arrival_step);
        debug_assert!(
            d.is_some(),
            "finished_step {} precedes arrival_step {} on request {}",
            self.finished_step,
            self.arrival_step,
            self.id
        );
        d
    }

    /// Whether this request carried a deadline and met it (completed
    /// without eviction). A cancelled request yields `None` even with a
    /// deadline: the client withdrew it, so it neither hit nor missed —
    /// counting it either way would skew hit rates with client
    /// behavior. Failed and rejected requests likewise yield `None`:
    /// an infrastructure fault or admission shed is not a scheduling
    /// outcome, and charging it to the deadline hit rate would mix
    /// fault counts into latency metrics.
    pub fn deadline_hit(&self) -> Option<bool> {
        if matches!(
            self.finish,
            FinishReason::Cancelled | FinishReason::Failed | FinishReason::Rejected
        ) {
            return None;
        }
        self.deadline_steps
            .map(|_| self.finish != FinishReason::DeadlineExceeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_steps_accounts_for_chunked_prefill() {
        let r = GenRequest::greedy(0, vec![1; 10], 4);
        // Chunk 1: 10 prefill steps + 3 more decode steps.
        assert_eq!(r.min_steps_to_complete(1), 13);
        // Chunk 4: ceil(10/4)=3 prefill steps + 3 decode steps.
        assert_eq!(r.min_steps_to_complete(4), 6);
        // Chunk larger than the prompt: one prefill step.
        assert_eq!(r.min_steps_to_complete(64), 4);
        // A stop token can end generation at the first sample.
        let mut early = r.clone();
        early.eos_token = Some(7);
        assert_eq!(early.min_steps_to_complete(64), 1);
    }

    #[test]
    fn absolute_deadline_is_arrival_plus_budget() {
        let mut r = GenRequest::greedy(0, vec![1], 1);
        assert_eq!(r.absolute_deadline(), None);
        r.arrival_step = 5;
        r.deadline_steps = Some(10);
        assert_eq!(r.absolute_deadline(), Some(15));
    }

    fn completion(arrival: u64, first: Option<u64>, admitted: Option<u64>) -> Completion {
        Completion {
            id: 0,
            model: 0,
            priority: Priority::Standard,
            tokens: vec![1],
            finish: FinishReason::MaxTokens,
            arrival_step: arrival,
            deadline_steps: None,
            admitted_step: admitted,
            first_token_step: first,
            finished_step: 20,
            preemptions: 0,
            paused_steps: 0,
            paused_steps_before_first_token: 0,
            retry_after_steps: None,
        }
    }

    #[test]
    fn latency_accessors_measure_from_arrival() {
        let c = completion(4, Some(9), Some(6));
        assert_eq!(c.ttft_steps(), Some(5));
        assert_eq!(c.queue_steps(), Some(2));
        assert_eq!(c.e2e_steps(), Some(16));
    }

    #[test]
    fn paused_time_is_excluded_from_ttft_but_not_e2e() {
        let mut c = completion(4, Some(9), Some(6));
        c.preemptions = 1;
        c.paused_steps = 3;
        c.paused_steps_before_first_token = 3;
        // 5 wall steps to first token, 3 of them paused: TTFT is 2.
        assert_eq!(c.ttft_steps(), Some(2));
        // Queueing still measures arrival → first admission only.
        assert_eq!(c.queue_steps(), Some(2));
        // End-to-end stays wall time: the user waited through the pause.
        assert_eq!(c.e2e_steps(), Some(16));
    }

    #[test]
    fn cancelled_requests_neither_hit_nor_miss_deadlines() {
        let mut c = completion(4, Some(9), Some(6));
        c.deadline_steps = Some(100);
        assert_eq!(c.deadline_hit(), Some(true));
        c.finish = FinishReason::Cancelled;
        assert_eq!(c.deadline_hit(), None);
    }

    #[test]
    fn failed_and_rejected_requests_are_excluded_from_deadline_accounting() {
        let mut c = completion(4, Some(9), Some(6));
        c.deadline_steps = Some(100);
        c.finish = FinishReason::Failed;
        assert_eq!(c.deadline_hit(), None);
        c.finish = FinishReason::Rejected;
        assert_eq!(c.deadline_hit(), None);
    }

    #[test]
    fn min_steps_remaining_tracks_partial_progress() {
        let r = GenRequest::greedy(0, vec![1; 10], 4);
        // No progress: identical to min_steps_to_complete.
        assert_eq!(r.min_steps_remaining(0, 0, 4), r.min_steps_to_complete(4));
        // Mid-prefill at pos 6 with chunk 4: 1 prefill step (samples the
        // first token) + 3 decode steps.
        assert_eq!(r.min_steps_remaining(6, 0, 4), 4);
        // Mid-decode with 1 of 4 tokens out: one step per missing token.
        assert_eq!(r.min_steps_remaining(10, 1, 4), 3);
        // All but the last token out: exactly one step left.
        assert_eq!(r.min_steps_remaining(10, 3, 4), 1);
        // A stop token can end any decode step.
        let mut early = r.clone();
        early.eos_token = Some(7);
        assert_eq!(early.min_steps_remaining(10, 2, 4), 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn inconsistent_stamps_yield_none_instead_of_wrapping() {
        // A backend reporting a first-token step before the arrival must
        // not underflow into a ~u64::MAX latency.
        let c = completion(10, Some(3), Some(2));
        assert_eq!(c.ttft_steps(), None);
        assert_eq!(c.queue_steps(), None);
        // Likewise, paused bookkeeping exceeding the wall TTFT (a
        // resume-stamp bug) must yield None, not wrap.
        let mut p = completion(4, Some(9), Some(6));
        p.paused_steps_before_first_token = 50;
        assert_eq!(p.ttft_steps(), None);
        // And an exit stamp before the arrival (a clock regression)
        // must yield None from the end-to-end accessor too.
        let mut e = completion(10, None, None);
        e.finished_step = 3;
        assert_eq!(e.e2e_steps(), None);
    }
}
