//! Generation requests and their lifecycle records.

use lightmamba_model::sampler::Sampler;

use crate::registry::ModelId;

/// Unique id of a request within one engine run.
pub type RequestId = u64;

/// A user generation request as admitted by the engine.
#[derive(Debug, Clone)]
pub struct GenRequest {
    /// Unique id (admission FIFO ties break on it).
    pub id: RequestId,
    /// Which registered model serves this request (see
    /// [`crate::registry::ModelRegistry`]); 0 is the first-registered
    /// backend, so single-model engines need not set it.
    pub model: ModelId,
    /// Prompt token ids (must be non-empty).
    pub prompt: Vec<u32>,
    /// Number of tokens to generate after the prompt.
    pub max_new_tokens: usize,
    /// Decoding strategy.
    pub sampler: Sampler,
    /// Seed of the request's private sampling RNG. Keeping sampling
    /// per-request makes outputs independent of how the scheduler
    /// interleaves sequences — the property the equivalence tests pin.
    pub seed: u64,
    /// Engine step at which the request arrives.
    pub arrival_step: u64,
    /// Optional latency budget in engine steps from arrival; the engine
    /// evicts requests that exceed it.
    pub deadline_steps: Option<u64>,
    /// Optional stop token ending generation early.
    pub eos_token: Option<u32>,
}

impl GenRequest {
    /// A greedy-decoded request with no deadline, arriving at step 0.
    pub fn greedy(id: RequestId, prompt: Vec<u32>, max_new_tokens: usize) -> Self {
        GenRequest {
            id,
            model: 0,
            prompt,
            max_new_tokens,
            sampler: Sampler::Greedy,
            seed: id,
            arrival_step: 0,
            deadline_steps: None,
            eos_token: None,
        }
    }

    /// Retargets the request at a registered model.
    pub fn on_model(mut self, model: ModelId) -> Self {
        self.model = model;
        self
    }
}

/// Why a request left the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Generated `max_new_tokens`.
    MaxTokens,
    /// Produced the request's stop token.
    Eos,
    /// Evicted after exceeding its deadline.
    DeadlineExceeded,
}

/// Completion record of one request, timestamped in engine steps.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The request's id.
    pub id: RequestId,
    /// The model that served (or would have served) the request.
    pub model: ModelId,
    /// Generated tokens (prompt excluded).
    pub tokens: Vec<u32>,
    /// Why generation ended.
    pub finish: FinishReason,
    /// Step the request arrived.
    pub arrival_step: u64,
    /// Step the request was admitted to a slot (`None` when it expired
    /// in the waiting queue without ever being admitted).
    pub admitted_step: Option<u64>,
    /// Step the first generated token appeared (`None` when evicted
    /// during prefill).
    pub first_token_step: Option<u64>,
    /// Step the request left the engine.
    pub finished_step: u64,
}

impl Completion {
    /// Time-to-first-token in engine steps (arrival → first token).
    pub fn ttft_steps(&self) -> Option<u64> {
        self.first_token_step.map(|t| t - self.arrival_step)
    }

    /// Queueing delay in engine steps (arrival → admission; `None` when
    /// the request was never admitted).
    pub fn queue_steps(&self) -> Option<u64> {
        self.admitted_step.map(|a| a - self.arrival_step)
    }

    /// End-to-end latency in engine steps.
    pub fn e2e_steps(&self) -> u64 {
        self.finished_step - self.arrival_step
    }
}
