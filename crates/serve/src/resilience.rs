//! Fault-domain health tracking, overload shedding, and graceful
//! degradation for the serving engine.
//!
//! Each registered backend is one *fault domain*: an error return or a
//! caught panic from its batched advance fails only the requests that
//! domain was serving, never the engine ([`crate::engine::ServeEngine`]
//! wraps every per-model sub-batch in a panic catch). This module holds
//! the policy around that containment:
//!
//! * [`BackendHealth`] / `HealthTracker` — the per-model quarantine
//!   state machine. A fault moves a backend `Healthy →
//!   Quarantined { until, level }`; the quarantine window is a
//!   deterministic exponential backoff in engine steps
//!   (`backoff_base << level`, capped at `backoff_max`). When the
//!   window elapses the backend opens *half-way*: exactly one canary
//!   request is admitted to probe it. A clean advance readmits the
//!   backend (`HalfOpen → Healthy`); another fault deepens the
//!   quarantine (`HalfOpen → Quarantined { level + 1 }`). Everything is
//!   keyed to the engine's virtual clock, so the whole machine is
//!   deterministic and replayable.
//! * [`ResilienceConfig`] — the engine's fault-tolerance knobs:
//!   quarantine on/off, backoff shape, the bounded admission queue, and
//!   the optional degradation controller. The default keeps fault-free
//!   runs bit-identical to an engine without the fault layer: no queue
//!   bound, no degradation, quarantine armed but inert until a fault.
//! * `DegradationController` — graceful degradation under sustained
//!   overload. It watches the waiting-queue depth against
//!   [`DegradationConfig::queue_slo`] each step and walks a documented
//!   ladder after [`DegradationConfig::breach_steps`] consecutive
//!   breaches (stepping back up after
//!   [`DegradationConfig::recover_steps`] clear steps):
//!
//!   | level | action |
//!   |-------|--------|
//!   | 0 | nominal service |
//!   | 1 | halve the prefill chunk (never below 1) — smaller step quanta, fairer interleave; outputs stay bit-identical because chunked prefill is exact |
//!   | 2 | additionally shed [`crate::request::Priority::Batch`] arrivals ([`crate::request::FinishReason::Rejected`]) |
//!   | 3 | additionally route non-[`crate::request::Priority::Interactive`] arrivals to the registry's cheapest backend ([`crate::registry::ModelRegistry::cheapest_model`], e.g. W4A4) |

use crate::registry::ModelId;

/// Health of one registered backend (one fault domain) as tracked by
/// the engine's quarantine machine. Read it via
/// [`crate::engine::ServeEngine::backend_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendHealth {
    /// Serving normally; admission is unrestricted.
    Healthy,
    /// Faulted; no admission until the backoff window elapses.
    Quarantined {
        /// First engine step at which the backend may open half-way.
        until: u64,
        /// Consecutive-fault depth (drives the exponential backoff).
        level: u32,
    },
    /// Backoff elapsed; exactly one canary request probes the backend.
    /// A clean advance readmits it, another fault deepens quarantine.
    HalfOpen {
        /// The level the backend would return to on another fault + 1.
        level: u32,
    },
}

/// Fault-tolerance knobs of [`crate::engine::ServeEngine`], set via
/// [`crate::engine::ServeEngine::set_resilience`]. The default is
/// *inert on the fault-free path*: quarantine arms only after a fault,
/// the queue is unbounded, degradation is off — so an engine with the
/// default config produces bit-identical outputs to one predating the
/// fault layer.
#[derive(Debug, Clone, Copy)]
pub struct ResilienceConfig {
    /// Whether a faulting backend is quarantined. With `false` the
    /// engine still *contains* faults (the domain's residents retire as
    /// [`crate::request::FinishReason::Failed`]) but keeps feeding the
    /// faulty backend — the no-mitigation baseline the chaos study
    /// compares against.
    pub quarantine: bool,
    /// Quarantine window of the first fault, in engine steps; each
    /// consecutive fault doubles it.
    pub backoff_base: u64,
    /// Upper bound on the quarantine window.
    pub backoff_max: u64,
    /// Bounded admission queue: an arrival finding this many requests
    /// already waiting is shed with
    /// [`crate::request::FinishReason::Rejected`] and a
    /// [`crate::request::Completion::retry_after_steps`] hint. `None`
    /// (the default) never sheds.
    pub queue_limit: Option<usize>,
    /// Graceful-degradation controller; `None` (the default) is off.
    pub degradation: Option<DegradationConfig>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            quarantine: true,
            backoff_base: 4,
            backoff_max: 64,
            queue_limit: None,
            degradation: None,
        }
    }
}

impl ResilienceConfig {
    /// The no-mitigation baseline: faults are still isolated per domain
    /// but nothing is quarantined or shed. The chaos study runs the
    /// same fault schedule under this and under the default to show
    /// quarantine + shedding strictly improve goodput.
    pub fn none() -> Self {
        ResilienceConfig {
            quarantine: false,
            queue_limit: None,
            degradation: None,
            ..ResilienceConfig::default()
        }
    }
}

/// Knobs of the degradation controller (see the module docs for the
/// ladder the controller walks).
#[derive(Debug, Clone, Copy)]
pub struct DegradationConfig {
    /// Waiting-queue depth above which a step counts as an SLO breach.
    pub queue_slo: usize,
    /// Consecutive breached steps before stepping *down* one level.
    pub breach_steps: u64,
    /// Consecutive clear steps before stepping back *up* one level.
    pub recover_steps: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            queue_slo: 32,
            breach_steps: 8,
            recover_steps: 16,
        }
    }
}

/// Deepest rung of the degradation ladder.
pub const MAX_DEGRADATION_LEVEL: u8 = 3;

/// Per-model quarantine state machine (engine-internal; exposed
/// read-only through [`crate::engine::ServeEngine::backend_health`]).
#[derive(Debug)]
pub(crate) struct HealthTracker {
    health: Vec<BackendHealth>,
    /// Fast path: when no backend is unhealthy the engine skips the
    /// per-step mask refresh and admission gating entirely.
    unhealthy: usize,
}

impl HealthTracker {
    pub(crate) fn new(models: usize) -> Self {
        HealthTracker {
            health: vec![BackendHealth::Healthy; models],
            unhealthy: 0,
        }
    }

    pub(crate) fn get(&self, mid: ModelId) -> BackendHealth {
        self.health[mid]
    }

    pub(crate) fn any_unhealthy(&self) -> bool {
        self.unhealthy > 0
    }

    fn backoff(cfg: &ResilienceConfig, level: u32) -> u64 {
        cfg.backoff_base
            .checked_shl(level)
            .unwrap_or(cfg.backoff_max)
            .min(cfg.backoff_max)
            .max(1)
    }

    /// Records a fault on `mid` at `clock`: a healthy or half-open
    /// backend enters (or deepens) quarantine. Returns the level
    /// entered.
    pub(crate) fn on_fault(&mut self, mid: ModelId, clock: u64, cfg: &ResilienceConfig) -> u32 {
        let level = match self.health[mid] {
            BackendHealth::Healthy => {
                self.unhealthy += 1;
                0
            }
            BackendHealth::HalfOpen { level } => level + 1,
            // A fault while already quarantined (the canary of a prior
            // half-open window raced the transition) deepens it too.
            BackendHealth::Quarantined { level, .. } => level + 1,
        };
        self.health[mid] = BackendHealth::Quarantined {
            until: clock + Self::backoff(cfg, level),
            level,
        };
        level
    }

    /// Advances quarantine windows at `clock`: every quarantined
    /// backend whose backoff elapsed opens half-way. Calls `opened` for
    /// each transition (allocation-free).
    pub(crate) fn tick(&mut self, clock: u64, mut opened: impl FnMut(ModelId, u32)) {
        if self.unhealthy == 0 {
            return;
        }
        for (mid, h) in self.health.iter_mut().enumerate() {
            if let BackendHealth::Quarantined { until, level } = *h {
                if clock >= until {
                    *h = BackendHealth::HalfOpen { level };
                    opened(mid, level);
                }
            }
        }
    }

    /// Records a clean advance on `mid`: a half-open backend is
    /// readmitted. Returns `true` on that recovery transition.
    pub(crate) fn on_clean_advance(&mut self, mid: ModelId) -> bool {
        if let BackendHealth::HalfOpen { .. } = self.health[mid] {
            self.health[mid] = BackendHealth::Healthy;
            self.unhealthy -= 1;
            true
        } else {
            false
        }
    }

    /// Writes the admission mask into `mask` (`true` = the model
    /// accepts no new admissions). Half-open backends read `false`: the
    /// policy should still offer picks so the engine can admit the one
    /// canary (the engine enforces that cap).
    pub(crate) fn fill_mask(&self, mask: &mut [bool]) {
        for (m, h) in mask.iter_mut().zip(&self.health) {
            *m = matches!(h, BackendHealth::Quarantined { .. });
        }
    }
}

/// Sustained-overload controller walking the degradation ladder (see
/// the module docs). Engine-internal; the current rung is exposed via
/// [`crate::engine::ServeEngine::degradation_level`].
#[derive(Debug, Default)]
pub(crate) struct DegradationController {
    level: u8,
    breach_run: u64,
    clear_run: u64,
}

impl DegradationController {
    pub(crate) fn level(&self) -> u8 {
        self.level
    }

    /// Folds one step's queue depth into the breach/recovery counters;
    /// returns `Some(new_level)` when the rung changed this step.
    pub(crate) fn observe(&mut self, queue_depth: usize, cfg: &DegradationConfig) -> Option<u8> {
        if queue_depth > cfg.queue_slo {
            self.clear_run = 0;
            self.breach_run += 1;
            if self.breach_run >= cfg.breach_steps.max(1) && self.level < MAX_DEGRADATION_LEVEL {
                self.breach_run = 0;
                self.level += 1;
                return Some(self.level);
            }
        } else {
            self.breach_run = 0;
            if self.level > 0 {
                self.clear_run += 1;
                if self.clear_run >= cfg.recover_steps.max(1) {
                    self.clear_run = 0;
                    self.level -= 1;
                    return Some(self.level);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_enters_quarantine_with_exponential_backoff() {
        let cfg = ResilienceConfig::default();
        let mut t = HealthTracker::new(2);
        assert_eq!(t.get(0), BackendHealth::Healthy);
        assert!(!t.any_unhealthy());

        let level = t.on_fault(0, 10, &cfg);
        assert_eq!(level, 0);
        assert_eq!(
            t.get(0),
            BackendHealth::Quarantined {
                until: 10 + cfg.backoff_base,
                level: 0
            }
        );
        assert!(t.any_unhealthy());
        // The other model is untouched.
        assert_eq!(t.get(1), BackendHealth::Healthy);
    }

    #[test]
    fn half_open_fault_deepens_and_clean_advance_recovers() {
        let cfg = ResilienceConfig::default();
        let mut t = HealthTracker::new(1);
        t.on_fault(0, 0, &cfg);

        // Before the window: no transition.
        let mut opened = Vec::new();
        t.tick(cfg.backoff_base - 1, |m, l| opened.push((m, l)));
        assert!(opened.is_empty());

        // Window elapsed: half-open.
        t.tick(cfg.backoff_base, |m, l| opened.push((m, l)));
        assert_eq!(opened, vec![(0, 0)]);
        assert!(matches!(t.get(0), BackendHealth::HalfOpen { level: 0 }));

        // The canary faults: quarantine deepens, backoff doubles.
        let level = t.on_fault(0, cfg.backoff_base, &cfg);
        assert_eq!(level, 1);
        assert_eq!(
            t.get(0),
            BackendHealth::Quarantined {
                until: cfg.backoff_base + cfg.backoff_base * 2,
                level: 1
            }
        );

        // Next window elapses, the canary survives: healthy again.
        t.tick(cfg.backoff_base * 3, |_, _| {});
        assert!(t.on_clean_advance(0));
        assert_eq!(t.get(0), BackendHealth::Healthy);
        assert!(!t.any_unhealthy());
        // Clean advances while healthy are not "recoveries".
        assert!(!t.on_clean_advance(0));
    }

    #[test]
    fn backoff_is_capped_and_never_zero() {
        let cfg = ResilienceConfig {
            backoff_base: 4,
            backoff_max: 64,
            ..ResilienceConfig::default()
        };
        assert_eq!(HealthTracker::backoff(&cfg, 0), 4);
        assert_eq!(HealthTracker::backoff(&cfg, 3), 32);
        assert_eq!(HealthTracker::backoff(&cfg, 4), 64);
        assert_eq!(HealthTracker::backoff(&cfg, 60), 64);
        // Shift overflow saturates to the cap instead of wrapping.
        assert_eq!(HealthTracker::backoff(&cfg, u32::MAX), 64);
        let degenerate = ResilienceConfig {
            backoff_base: 0,
            backoff_max: 0,
            ..ResilienceConfig::default()
        };
        assert_eq!(HealthTracker::backoff(&degenerate, 0), 1);
    }

    #[test]
    fn admission_mask_blocks_quarantined_but_not_half_open() {
        let cfg = ResilienceConfig::default();
        let mut t = HealthTracker::new(3);
        t.on_fault(1, 0, &cfg);
        t.on_fault(2, 0, &cfg);
        t.tick(cfg.backoff_base, |_, _| {});
        t.on_fault(2, cfg.backoff_base, &cfg); // 2 back under quarantine
        t.tick(cfg.backoff_base, |_, _| {}); // re-open 1? already open
        let mut mask = [false; 3];
        t.fill_mask(&mut mask);
        assert_eq!(mask, [false, false, true]);
    }

    #[test]
    fn degradation_walks_the_ladder_both_ways() {
        let cfg = DegradationConfig {
            queue_slo: 4,
            breach_steps: 2,
            recover_steps: 3,
        };
        let mut d = DegradationController::default();
        assert_eq!(d.level(), 0);

        // Two breached steps step down one rung.
        assert_eq!(d.observe(10, &cfg), None);
        assert_eq!(d.observe(10, &cfg), Some(1));
        // A clear step resets the breach run...
        assert_eq!(d.observe(0, &cfg), None);
        assert_eq!(d.observe(10, &cfg), None);
        // ...and a breach resets the clear run.
        assert_eq!(d.observe(10, &cfg), Some(2));

        // Three consecutive clear steps recover one rung at a time.
        assert_eq!(d.observe(0, &cfg), None);
        assert_eq!(d.observe(0, &cfg), None);
        assert_eq!(d.observe(0, &cfg), Some(1));
        assert_eq!(d.observe(0, &cfg), None);
        assert_eq!(d.observe(0, &cfg), None);
        assert_eq!(d.observe(0, &cfg), Some(0));
        // At the floor, clear steps are a no-op.
        assert_eq!(d.observe(0, &cfg), None);
    }

    #[test]
    fn degradation_saturates_at_the_deepest_rung() {
        let cfg = DegradationConfig {
            queue_slo: 0,
            breach_steps: 1,
            recover_steps: 1,
        };
        let mut d = DegradationController::default();
        assert_eq!(d.observe(1, &cfg), Some(1));
        assert_eq!(d.observe(1, &cfg), Some(2));
        assert_eq!(d.observe(1, &cfg), Some(3));
        assert_eq!(d.observe(1, &cfg), None);
        assert_eq!(d.level(), MAX_DEGRADATION_LEVEL);
    }
}
