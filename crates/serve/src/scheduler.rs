//! Admission policies: continuous batching vs the static baseline.
//!
//! The engine always admits from the front of a FIFO waiting queue —
//! schedulers only decide *how many* requests may join this step, which
//! is the whole policy surface once states are fixed-size. Continuous
//! batching admits whenever a slot is free, so sequences join and leave
//! the running batch token-by-token. Static batching (the baseline every
//! serving paper compares against) waits for the running batch to drain
//! completely before admitting the next one, so short sequences idle
//! their slots while the longest member finishes.

/// An admission policy.
pub trait Scheduler {
    /// How many requests to admit this step, given the queue depth,
    /// free slots, and currently active sequences.
    fn admit(&mut self, waiting: usize, free_slots: usize, active: usize) -> usize;

    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Token-level continuous batching: fill every free slot, every step.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContinuousBatching;

impl Scheduler for ContinuousBatching {
    fn admit(&mut self, waiting: usize, free_slots: usize, _active: usize) -> usize {
        waiting.min(free_slots)
    }

    fn name(&self) -> &'static str {
        "continuous"
    }
}

/// Static batching: admit a full batch only when the engine is idle.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBatching;

impl Scheduler for StaticBatching {
    fn admit(&mut self, waiting: usize, free_slots: usize, active: usize) -> usize {
        if active == 0 {
            waiting.min(free_slots)
        } else {
            0
        }
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_fills_free_slots() {
        let mut s = ContinuousBatching;
        assert_eq!(s.admit(10, 4, 12), 4);
        assert_eq!(s.admit(2, 4, 12), 2);
        assert_eq!(s.admit(0, 4, 12), 0);
        assert_eq!(s.admit(10, 0, 16), 0);
    }

    #[test]
    fn static_waits_for_drain() {
        let mut s = StaticBatching;
        assert_eq!(s.admit(10, 4, 1), 0, "batch still running");
        assert_eq!(s.admit(10, 16, 0), 10);
        assert_eq!(s.admit(32, 16, 0), 16);
    }
}
