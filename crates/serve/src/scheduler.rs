//! Admission and preemption policies: *which* requests hold the slots,
//! and in what order.
//!
//! PR 1's scheduler only chose *how many* requests to admit from the
//! front of one FIFO; everything latency-shaped (deadlines, priorities,
//! per-model fairness) then had to be enforced after the fact by
//! eviction. A [`Policy`] instead selects *which* requests to admit by
//! returning indices into the full candidate list — fresh arrivals plus
//! paused (preempted) sequences awaiting resume — so ordering decisions
//! move where they belong, ahead of admission:
//!
//! * [`Fifo`] — arrival order, fill every free slot (PR 1's continuous
//!   batching);
//! * [`StaticBatching`] — arrival order, but only when the engine is
//!   idle (the static baseline every serving paper compares against);
//! * [`Edf`] — earliest absolute deadline first; requests whose deadline
//!   is provably unmeetable are evicted *before* admission
//!   ([`Policy::evicts_doomed`]) so they never burn a slot;
//! * [`PriorityClasses`] — strict [`crate::request::Priority`] classes,
//!   FIFO within a class;
//! * [`WeightedFair`] — weighted fair queueing across [`ModelId`]s
//!   sharing one slot pool: long-run slot shares converge to the
//!   configured weights while any backlogged model can always make
//!   progress.
//!
//! Policies may also *preempt*: [`Policy::preempt`] names resident
//! victims to pause back to the queue so a more urgent candidate can
//! take the slot this step — cheap for Mamba because the entire
//! resident footprint is one fixed-size state
//! ([`crate::backend::PausedState`]). [`Edf::preemptive`] pauses the
//! latest-deadline resident when an earlier-deadline candidate would
//! otherwise be doomed; [`PriorityClasses::preemptive`] lets a higher
//! class always displace a strictly lower one. Both default to
//! non-preemptive, and FIFO/WFQ never preempt.
//!
//! Policies only reorder *when* a request runs. Request *outputs* are
//! policy-independent (each request samples with its own seeded RNG,
//! and pause/resume restores the state bit-for-bit), which is the
//! bit-identity invariant the engine's equivalence tests pin.

use crate::error::ServeError;
use crate::registry::ModelId;
use crate::request::{GenRequest, Priority, RequestId};

/// Snapshot of one admission candidate or resident sequence — the
/// scheduling-relevant keys of a request plus how much work it still
/// owes. Policies rank candidates ([`AdmissionCtx::candidate`]) and
/// pick preemption victims ([`AdmissionCtx::residents`]) on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqView {
    /// The request's id (ties break on it).
    pub id: RequestId,
    /// The registered model serving the request.
    pub model: ModelId,
    /// The request's strict priority class.
    pub priority: Priority,
    /// Step the request arrived.
    pub arrival_step: u64,
    /// Absolute deadline step, if the request carries a budget.
    pub absolute_deadline: Option<u64>,
    /// Fewest further engine steps to completion from the sequence's
    /// current progress ([`GenRequest::min_steps_remaining`]) — the
    /// slack math preemption decisions run on.
    pub remaining_steps: u64,
}

impl SeqView {
    /// Builds a view of `req` owing `remaining_steps` more steps.
    pub fn new(req: &GenRequest, remaining_steps: u64) -> Self {
        SeqView {
            id: req.id,
            model: req.model,
            priority: req.priority,
            arrival_step: req.arrival_step,
            absolute_deadline: req.absolute_deadline(),
            remaining_steps,
        }
    }

    /// Deadline key for EDF-style ordering (`None` sorts last).
    fn deadline_key(&self) -> u64 {
        self.absolute_deadline.unwrap_or(u64::MAX)
    }
}

/// What a policy sees when the engine asks it to admit: the entire
/// waiting queue in arrival order, the paused sequences awaiting
/// resume, the resident sequences (preemption victims), plus the engine
/// state a selection rule can key on.
#[derive(Debug)]
pub struct AdmissionCtx<'a> {
    /// Arrived, unadmitted requests in arrival order.
    pub waiting: &'a [GenRequest],
    /// Preempted sequences awaiting a slot, oldest pause first. They
    /// compete for slots alongside `waiting` as admission candidates
    /// with indices `waiting.len()..` (see [`AdmissionCtx::candidate`]).
    pub paused: &'a [SeqView],
    /// Resident sequences, in batch order — the only legal preemption
    /// victims ([`Policy::preempt`] returns indices into this slice).
    pub residents: &'a [SeqView],
    /// Current engine step.
    pub clock: u64,
    /// Free slots this step (an upper bound on admissions).
    pub free_slots: usize,
    /// Resident sequences.
    pub active: usize,
    /// Resident sequences per registered model ([`ModelId`]-indexed).
    pub active_per_model: &'a [usize],
    /// The engine's prefill-chunk budget (prompt tokens one sequence
    /// may consume per step) — feasibility math depends on it.
    pub prefill_chunk: usize,
    /// Per-model quarantine mask, indexed by model id (`true` = the
    /// model is quarantined after a backend fault and accepts no
    /// admissions this step). Advisory: the engine enforces the gate
    /// regardless, so a policy ignoring this stays correct — a
    /// quarantine-aware policy can use it to spend its picks on
    /// admittable work instead. Half-open (canary-probing) models read
    /// `false` here so policies still offer them candidates.
    pub quarantined: &'a [bool],
}

impl AdmissionCtx<'_> {
    /// Number of admission candidates: waiting requests followed by
    /// paused sequences.
    pub fn n_candidates(&self) -> usize {
        self.waiting.len() + self.paused.len()
    }

    /// The `i`-th admission candidate: indices `0..waiting.len()` are
    /// fresh arrivals, the rest are paused sequences (their views carry
    /// the *remaining* work, so deadline-slack math is progress-aware).
    /// `None` when out of range.
    pub fn candidate(&self, i: usize) -> Option<SeqView> {
        if let Some(r) = self.waiting.get(i) {
            Some(SeqView::new(r, r.min_steps_to_complete(self.prefill_chunk)))
        } else {
            self.paused.get(i - self.waiting.len()).copied()
        }
    }

    /// Candidate indices ordered by an EDF/priority-style key over the
    /// candidate views — the shared skeleton of the ordering policies.
    fn candidates_ordered_by<K: Ord>(&self, key: impl Fn(&SeqView) -> K) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.n_candidates()).collect();
        order.sort_by_key(|&i| key(&self.candidate(i).expect("index in range")));
        order
    }
}

/// An admission (and optionally preemption) policy: decides which
/// candidates take the free slots each step, and which residents to
/// pause for more urgent work.
///
/// # Example
///
/// A complete shortest-job-first policy, run on a live engine:
///
/// ```
/// use lightmamba_model::{MambaConfig, MambaModel};
/// use lightmamba_serve::engine::{EngineConfig, ServeEngine};
/// use lightmamba_serve::request::GenRequest;
/// use lightmamba_serve::scheduler::{AdmissionCtx, Policy};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// struct ShortestFirst;
///
/// impl Policy for ShortestFirst {
///     fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
///         let mut order: Vec<usize> = (0..ctx.n_candidates()).collect();
///         order.sort_by_key(|&i| {
///             let c = ctx.candidate(i).expect("index in range");
///             (c.remaining_steps, c.id)
///         });
///         order.truncate(ctx.free_slots);
///         order
///     }
///     fn name(&self) -> &'static str {
///         "sjf"
///     }
/// }
///
/// # fn main() -> Result<(), lightmamba_serve::ServeError> {
/// let model = MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(1))?;
/// let mut engine = ServeEngine::new(
///     &model,
///     EngineConfig { slots: 1, max_steps: 10_000, prefill_chunk: 1, threads: 1, ..Default::default() },
/// )?;
/// // The long job arrives first; shortest-job-first runs it last.
/// engine.submit(vec![
///     GenRequest::greedy(0, vec![1, 2], 20),
///     GenRequest::greedy(1, vec![3], 2),
/// ])?;
/// let report = engine.run(&mut ShortestFirst)?;
/// assert_eq!(report.policy, "sjf");
/// assert_eq!(report.completed, 2);
/// let first_done = engine.completions().first().expect("two completions");
/// assert_eq!(first_done.id, 1, "the short request finishes first");
/// # Ok(())
/// # }
/// ```
///
/// Policies are `Send` so a boxed policy can drive an engine on a
/// dedicated serving thread (the streaming frontend,
/// [`crate::frontend`], moves one there). They need not be `Sync`:
/// the engine serializes all policy calls.
pub trait Policy: Send {
    /// Indices of the admission candidates ([`AdmissionCtx::candidate`]:
    /// waiting requests first, then paused sequences) to grant slots
    /// this step, in admission order. Picking a paused candidate
    /// *resumes* it (its saved state is restored into the new slot).
    /// The engine ignores out-of-range and duplicate indices and
    /// truncates to `ctx.free_slots`, so policies may over-select.
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize>;

    /// Policy name for reports. Doubles as the span *category* on the
    /// engine's per-step observability spans
    /// ([`crate::observe::EngineObs`]), so Chrome-trace consumers can
    /// filter a run by the policy that drove it.
    fn name(&self) -> &'static str;

    /// Indices into `ctx.residents` to preempt this step: each victim's
    /// fixed-size state is saved, its slot is freed before admission
    /// runs, and the sequence re-enters the candidate list as paused —
    /// to be resumed later bit-identically. The engine ignores
    /// out-of-range and duplicate indices. The default never preempts.
    fn preempt(&mut self, _ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        Vec::new()
    }

    /// Whether the engine should evict waiting or paused requests whose
    /// deadline is provably unmeetable *before* admission (see
    /// [`GenRequest::min_steps_remaining`]). Deadline-aware policies
    /// return `true` so doomed requests never occupy a slot; FIFO keeps
    /// the PR 1 behavior of discovering the miss at expiry.
    fn evicts_doomed(&self) -> bool {
        false
    }
}

/// Every name [`policy_by_name`] accepts — the CLI policy vocabulary
/// (benches and demos validate flags against this, so the name list
/// lives in exactly one place).
pub const POLICY_NAMES: [&str; 7] = [
    "fifo",
    "static",
    "edf",
    "edf-preempt",
    "priority",
    "priority-preempt",
    "wfq",
];

/// Constructs a policy from its CLI name. `"wfq"` gets equal weights —
/// build [`WeightedFair::new`] directly for custom weights.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for an unknown name; the
/// message lists every name in [`POLICY_NAMES`], so CLI callers can
/// surface it verbatim.
pub fn policy_by_name(name: &str) -> Result<Box<dyn Policy>, ServeError> {
    match name {
        "fifo" => Ok(Box::new(Fifo)),
        "static" => Ok(Box::new(StaticBatching)),
        "edf" => Ok(Box::new(Edf::default())),
        "edf-preempt" => Ok(Box::new(Edf::preemptive())),
        "priority" => Ok(Box::new(PriorityClasses::default())),
        "priority-preempt" => Ok(Box::new(PriorityClasses::preemptive())),
        "wfq" => Ok(Box::new(WeightedFair::equal())),
        _ => Err(ServeError::InvalidConfig(format!(
            "unknown policy {name:?}; valid names: {}",
            POLICY_NAMES.join(", ")
        ))),
    }
}

/// Token-level admission caps layered *under* every [`Policy`] —
/// the TGI-style `max_batch_prefill_tokens` / `max_batch_total_tokens`
/// knobs. The policy still ranks candidates; the engine then walks the
/// picks in policy order and defers (keeps queued, never drops) any
/// pick that would push either running total past its cap:
///
/// - `max_prefill_tokens_per_step` bounds the prompt tokens *fed* in a
///   single batched step: the sum over prefilling residents of their
///   next chunk plus each admitted pick's first chunk.
/// - `max_total_tokens` bounds the resident footprint: the sum over
///   everything holding a slot of `prompt.len() + max_new_tokens`
///   (the worst-case tokens a sequence processes before retiring).
///
/// Both checks use the *configured* prefill chunk, not the
/// degradation-ladder's effective chunk, so a recovering ladder can
/// never retroactively break an admission the budget already granted.
///
/// Liveness valve: when nothing is resident the engine admits the
/// policy's first pick even if it alone exceeds a cap — an oversized
/// request runs solo instead of starving, so every queued request
/// eventually completes. Deferred picks are counted in
/// [`crate::metrics::ServeReport::budget_deferrals`] and feed the shed
/// hint ([`crate::request::Completion::retry_after_steps`]).
///
/// Construct with [`TokenBudget::new`] (validates both caps are
/// non-zero) or calibrate from the accelerator cost model with
/// [`crate::accel_cost::calibrate_token_budget`], then set
/// [`crate::engine::EngineConfig::token_budget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenBudget {
    /// Cap on prompt tokens advanced (fed) per engine step.
    pub max_prefill_tokens_per_step: usize,
    /// Cap on the summed worst-case footprint
    /// (`prompt.len() + max_new_tokens`) of all slot-holding sequences.
    pub max_total_tokens: usize,
}

impl TokenBudget {
    /// Builds a budget, rejecting zero caps (a zero cap would defer
    /// every admission forever outside the liveness valve).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when either cap is 0.
    pub fn new(
        max_prefill_tokens_per_step: usize,
        max_total_tokens: usize,
    ) -> Result<Self, ServeError> {
        if max_prefill_tokens_per_step == 0 {
            return Err(ServeError::InvalidConfig(
                "token budget: max_prefill_tokens_per_step must be > 0".into(),
            ));
        }
        if max_total_tokens == 0 {
            return Err(ServeError::InvalidConfig(
                "token budget: max_total_tokens must be > 0".into(),
            ));
        }
        Ok(Self {
            max_prefill_tokens_per_step,
            max_total_tokens,
        })
    }
}

/// Arrival-order admission into every free slot — token-level
/// continuous batching over one FIFO (the PR 1 default). Candidate
/// order is already arrival order (waiting requests in arrival order,
/// then paused sequences — which FIFO itself never creates).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Policy for Fifo {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        (0..ctx.n_candidates().min(ctx.free_slots)).collect()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Static batching: admit a full batch in arrival order only when the
/// engine is idle, so short sequences idle their slots while the
/// longest batch member finishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBatching;

impl Policy for StaticBatching {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        if ctx.active == 0 {
            (0..ctx.n_candidates().min(ctx.free_slots)).collect()
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Earliest-deadline-first admission. Candidates without a deadline
/// sort last (deadline = ∞); ties break on id, so deadline-free traffic
/// degenerates to FIFO. Pairs with pre-admission doomed eviction: a
/// request that can no longer meet its deadline even if admitted now is
/// dropped instead of wasting slot steps on a guaranteed miss.
///
/// The [`Edf::preemptive`] variant additionally rescues candidates on
/// their *last feasible step*: when an earlier-deadline candidate would
/// be doomed by waiting one more step and no slot is free, the resident
/// with the latest deadline (no deadline = latest of all) is paused for
/// it — never a resident at least as urgent as the one being rescued.
#[derive(Debug, Clone, Copy, Default)]
pub struct Edf {
    /// Whether to pause latest-deadline residents for earlier-deadline
    /// candidates that would otherwise be doomed.
    pub preemptive: bool,
}

impl Edf {
    /// The preemptive variant (`"edf-preempt"` on CLIs).
    pub fn preemptive() -> Self {
        Edf { preemptive: true }
    }
}

impl Policy for Edf {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        let mut order = ctx.candidates_ordered_by(|c| (c.deadline_key(), c.id));
        order.truncate(ctx.free_slots);
        order
    }

    fn name(&self) -> &'static str {
        if self.preemptive {
            "edf-preempt"
        } else {
            "edf"
        }
    }

    fn preempt(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        if !self.preemptive || ctx.residents.is_empty() {
            return Vec::new();
        }
        // A candidate on its last feasible step (zero slack) is doomed
        // unless admitted *now*. Admission grants freed slots in EDF
        // order, so rescuing the candidate at position `p` requires
        // slots for it AND everything ahead of it: `p + 1` in total —
        // pausing one victim per urgent candidate is not enough when
        // earlier-deadline (but slack-carrying) candidates would absorb
        // the freed slots first.
        let order = ctx.candidates_ordered_by(|c| (c.deadline_key(), c.id));
        // Victims latest-deadline-first (no deadline pauses first,
        // youngest breaks ties); a victim must hold a strictly later
        // deadline than the candidate it is paused for, so preemption
        // never sacrifices an equally or more urgent sequence.
        let mut victims: Vec<usize> = (0..ctx.residents.len()).collect();
        victims.sort_by_key(|&i| {
            let r = &ctx.residents[i];
            std::cmp::Reverse((r.deadline_key(), r.id))
        });
        let mut picks = Vec::new();
        let mut vi = 0;
        let mut available = ctx.free_slots;
        for (p, c) in order.iter().filter_map(|&i| ctx.candidate(i)).enumerate() {
            let urgent = c
                .absolute_deadline
                .is_some_and(|abs| ctx.clock + c.remaining_steps >= abs);
            if !urgent {
                continue;
            }
            // Pause victims until this candidate's whole EDF prefix is
            // covered; commit only a complete rescue (a partial one
            // would hand the freed slots to the slack-carrying prefix
            // and still lose the deadline — pure churn).
            let mut tentative = Vec::new();
            while available + tentative.len() < p + 1 {
                let Some(&v) = victims.get(vi) else { break };
                if ctx.residents[v].deadline_key() > c.deadline_key() {
                    tentative.push(v);
                    vi += 1;
                } else {
                    break;
                }
            }
            if available + tentative.len() > p {
                available += tentative.len();
                picks.extend(tentative);
            } else {
                // Victims are sorted by urgency and deeper candidates
                // only need more of them: nothing further is rescuable.
                break;
            }
        }
        picks
    }

    fn evicts_doomed(&self) -> bool {
        true
    }
}

/// Strict priority classes: every [`crate::request::Priority::Interactive`]
/// request is admitted before any `Standard` one, and so on; FIFO
/// within a class.
///
/// The default is non-preemptive — a resident low-class sequence keeps
/// its slot. Under [`PriorityClasses::preemptive`] the classes are
/// strict in residency too: a candidate that cannot get a slot pauses a
/// resident of a *strictly lower* class (lowest class first, youngest
/// within a class), so interactive traffic never waits behind batch
/// work. Equal classes never preempt each other, which bounds churn.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityClasses {
    /// Whether higher classes displace strictly lower-class residents.
    pub preemptive: bool,
}

impl PriorityClasses {
    /// The preemptive variant (`"priority-preempt"` on CLIs).
    pub fn preemptive() -> Self {
        PriorityClasses { preemptive: true }
    }
}

impl Policy for PriorityClasses {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        let mut order = ctx.candidates_ordered_by(|c| (c.priority, c.id));
        order.truncate(ctx.free_slots);
        order
    }

    fn name(&self) -> &'static str {
        if self.preemptive {
            "priority-preempt"
        } else {
            "priority"
        }
    }

    fn preempt(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        if !self.preemptive || ctx.residents.is_empty() {
            return Vec::new();
        }
        // Candidates that do not fit in the free slots, most urgent
        // first, each displacing the least urgent resident available —
        // provided that resident's class is strictly lower.
        let order = ctx.candidates_ordered_by(|c| (c.priority, c.id));
        let mut victims: Vec<usize> = (0..ctx.residents.len()).collect();
        victims.sort_by_key(|&i| {
            let r = &ctx.residents[i];
            std::cmp::Reverse((r.priority, r.id))
        });
        let mut picks = Vec::new();
        let mut vi = 0;
        for i in order.into_iter().skip(ctx.free_slots) {
            let Some(u) = ctx.candidate(i) else { break };
            let Some(&v) = victims.get(vi) else { break };
            if ctx.residents[v].priority > u.priority {
                picks.push(v);
                vi += 1;
            } else {
                break;
            }
        }
        picks
    }
}

/// Weighted fair queueing across models sharing one slot pool.
///
/// Each model accrues *service* — one unit per resident sequence per
/// step (slot-steps, the resource the pool actually rations). Free
/// slots go to the backlogged model with the smallest
/// `service / weight`, FIFO within a model, so long-run slot shares of
/// saturated models converge to `weight_m / Σ weights` while an idle
/// model's unused share flows to the others (work-conserving).
#[derive(Debug, Clone)]
pub struct WeightedFair {
    weights: Vec<f64>,
    service: Vec<f64>,
}

impl WeightedFair {
    /// One weight per [`ModelId`] in registry order. Models beyond the
    /// configured weights (or an empty list) weigh `1.0`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite weight — an unserviceable
    /// configuration.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "WFQ weights must be positive and finite: {weights:?}"
        );
        WeightedFair {
            weights,
            service: Vec::new(),
        }
    }

    /// Equal weights for every model — plain fair queueing.
    pub fn equal() -> Self {
        WeightedFair::new(Vec::new())
    }

    fn weight(&self, model: ModelId) -> f64 {
        self.weights.get(model).copied().unwrap_or(1.0)
    }

    /// Service accrued by `model` so far, in slot-steps.
    pub fn service(&self, model: ModelId) -> f64 {
        self.service.get(model).copied().unwrap_or(0.0)
    }
}

impl Policy for WeightedFair {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        // Charge occupancy: every resident sequence consumed one
        // slot-step since the last admission round.
        if self.service.len() < ctx.active_per_model.len() {
            self.service.resize(ctx.active_per_model.len(), 0.0);
        }
        for (m, &a) in ctx.active_per_model.iter().enumerate() {
            self.service[m] += a as f64;
        }

        // Oldest-first candidate indices per model (waiting and paused
        // alike — a paused sequence competes for its slot back through
        // the same fairness accounting; while paused it accrues no
        // service, so preemption churn cannot skew the shares).
        let n_models = self.service.len().max(
            (0..ctx.n_candidates())
                .filter_map(|i| ctx.candidate(i))
                .map(|c| c.model + 1)
                .max()
                .unwrap_or(0),
        );
        if self.service.len() < n_models {
            self.service.resize(n_models, 0.0);
        }
        let mut queues: Vec<std::collections::VecDeque<usize>> =
            vec![std::collections::VecDeque::new(); n_models];
        for i in 0..ctx.n_candidates() {
            let c = ctx.candidate(i).expect("index in range");
            queues[c.model].push_back(i);
        }

        // Hand each free slot to the backlogged model with the least
        // normalized service, provisionally charging one slot-step per
        // grant so one round spreads slots instead of dumping them all
        // on the currently least-served model.
        let mut virt = self.service.clone();
        let mut picks = Vec::new();
        for _ in 0..ctx.free_slots {
            let Some(best) = (0..n_models)
                .filter(|&m| !queues[m].is_empty())
                .min_by(|&a, &b| {
                    let ka = virt[a] / self.weight(a);
                    let kb = virt[b] / self.weight(b);
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
                })
            else {
                break;
            };
            picks.push(queues[best].pop_front().expect("model is backlogged"));
            virt[best] += 1.0;
        }
        picks
    }

    fn name(&self) -> &'static str {
        "wfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(id: u64) -> GenRequest {
        GenRequest::greedy(id, vec![1, 2], 4)
    }

    fn ctx<'a>(
        waiting: &'a [GenRequest],
        free_slots: usize,
        active: usize,
        active_per_model: &'a [usize],
    ) -> AdmissionCtx<'a> {
        AdmissionCtx {
            waiting,
            paused: &[],
            residents: &[],
            clock: 0,
            free_slots,
            active,
            active_per_model,
            prefill_chunk: 1,
            quarantined: &[],
        }
    }

    #[test]
    fn fifo_fills_free_slots_in_arrival_order() {
        let waiting: Vec<GenRequest> = (0..5).map(req).collect();
        assert_eq!(Fifo.select(&ctx(&waiting, 3, 2, &[2])), vec![0, 1, 2]);
        assert_eq!(Fifo.select(&ctx(&waiting, 8, 0, &[0])), vec![0, 1, 2, 3, 4]);
        assert_eq!(Fifo.select(&ctx(&waiting, 0, 4, &[4])), Vec::<usize>::new());
    }

    #[test]
    fn static_waits_for_drain() {
        let waiting: Vec<GenRequest> = (0..4).map(req).collect();
        assert!(StaticBatching.select(&ctx(&waiting, 4, 1, &[1])).is_empty());
        assert_eq!(
            StaticBatching.select(&ctx(&waiting, 4, 0, &[0])),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn edf_orders_by_absolute_deadline_then_id() {
        let mut waiting: Vec<GenRequest> = (0..4).map(req).collect();
        waiting[0].deadline_steps = Some(50); // abs 50
        waiting[1].deadline_steps = None; // ∞
        waiting[2].arrival_step = 5;
        waiting[2].deadline_steps = Some(10); // abs 15
        waiting[3].deadline_steps = Some(50); // abs 50, later id
        assert_eq!(
            Edf::default().select(&ctx(&waiting, 4, 0, &[0])),
            vec![2, 0, 3, 1]
        );
        assert_eq!(
            Edf::default().select(&ctx(&waiting, 2, 0, &[0])),
            vec![2, 0]
        );
        assert!(Edf::default().evicts_doomed());
    }

    #[test]
    fn priority_is_strict_and_fifo_within_class() {
        let mut waiting: Vec<GenRequest> = (0..5).map(req).collect();
        waiting[0].priority = Priority::Batch;
        waiting[1].priority = Priority::Standard;
        waiting[2].priority = Priority::Interactive;
        waiting[3].priority = Priority::Interactive;
        waiting[4].priority = Priority::Standard;
        assert_eq!(
            PriorityClasses::default().select(&ctx(&waiting, 5, 0, &[0])),
            vec![2, 3, 1, 4, 0]
        );
    }

    fn view(id: u64, deadline: Option<u64>, remaining: u64) -> SeqView {
        SeqView {
            id,
            model: 0,
            priority: Priority::Standard,
            arrival_step: 0,
            absolute_deadline: deadline,
            remaining_steps: remaining,
        }
    }

    #[test]
    fn paused_sequences_compete_as_candidates() {
        // One waiting request (index 0, abs deadline 50) and two paused
        // ones (indices 1 and 2): EDF resumes the tightest deadline
        // first, regardless of which side of the split it sits on.
        let mut waiting: Vec<GenRequest> = vec![req(0)];
        waiting[0].deadline_steps = Some(50);
        let paused = [view(1, Some(20), 3), view(2, None, 4)];
        let c = AdmissionCtx {
            waiting: &waiting,
            paused: &paused,
            residents: &[],
            clock: 0,
            free_slots: 2,
            active: 0,
            active_per_model: &[0],
            prefill_chunk: 1,
            quarantined: &[],
        };
        assert_eq!(c.n_candidates(), 3);
        assert_eq!(c.candidate(1).unwrap().id, 1);
        assert_eq!(Edf::default().select(&c), vec![1, 0]);
    }

    #[test]
    fn preemptive_edf_pauses_the_latest_deadline_victim_for_a_doomed_arrival() {
        // Clock 10, no free slots. The waiting request needs 5 steps
        // with an absolute deadline of 15: zero slack — doomed unless
        // admitted this step. Residents: one deadline-free hog, one
        // with a later deadline, one *earlier* than the arrival's.
        let mut waiting: Vec<GenRequest> = vec![req(9)];
        waiting[0].deadline_steps = Some(15); // abs 15, min 5 steps (prompt 2 + gen 4 - 1)
        let residents = [
            view(0, None, 40),
            view(1, Some(60), 10),
            view(2, Some(12), 2),
        ];
        let c = AdmissionCtx {
            waiting: &waiting,
            paused: &[],
            residents: &residents,
            clock: 10,
            free_slots: 0,
            active: 3,
            active_per_model: &[3],
            prefill_chunk: 1,
            quarantined: &[],
        };
        // Non-preemptive EDF never pauses anyone.
        assert!(Edf::default().preempt(&c).is_empty());
        // Preemptive EDF pauses the deadline-free hog (latest deadline).
        assert_eq!(Edf::preemptive().preempt(&c), vec![0]);
        // With a free slot the arrival fits without preemption.
        let free = AdmissionCtx { free_slots: 1, ..c };
        assert!(Edf::preemptive().preempt(&free).is_empty());
    }

    #[test]
    fn preemptive_edf_covers_the_whole_edf_prefix_of_a_doomed_candidate() {
        // Waiting A (abs 20, 5 steps remaining at clock 10: has slack)
        // sits ahead of B (abs 22, 12 steps remaining: zero slack) in
        // EDF order. Freed slots go to A first, so rescuing B needs TWO
        // victims — one for A's position, one for B's.
        let mut waiting: Vec<GenRequest> = vec![req(8), GenRequest::greedy(9, vec![1, 2], 11)];
        waiting[0].deadline_steps = Some(20); // min 5 steps, slack 5
        waiting[1].deadline_steps = Some(22); // min 12 steps, slack 0
        let residents = [view(0, None, 40), view(1, None, 50)];
        let c = AdmissionCtx {
            waiting: &waiting,
            paused: &[],
            residents: &residents,
            clock: 10,
            free_slots: 0,
            active: 2,
            active_per_model: &[2],
            prefill_chunk: 1,
            quarantined: &[],
        };
        let mut picks = Edf::preemptive().preempt(&c);
        picks.sort_unstable();
        assert_eq!(picks, vec![0, 1], "both hogs must be paused");

        // With only one qualifying victim the rescue cannot complete
        // (A would absorb the lone freed slot and B still misses):
        // pausing anyone would be pure churn, so nobody is paused.
        let one = [view(0, None, 40)];
        let c1 = AdmissionCtx {
            waiting: &waiting,
            paused: &[],
            residents: &one,
            clock: 10,
            free_slots: 0,
            active: 1,
            active_per_model: &[1],
            prefill_chunk: 1,
            quarantined: &[],
        };
        assert!(Edf::preemptive().preempt(&c1).is_empty());
    }

    #[test]
    fn preemptive_edf_never_sacrifices_a_more_urgent_resident() {
        // Every resident's deadline is at or before the arrival's: no
        // victim qualifies, the arrival is simply lost.
        let mut waiting: Vec<GenRequest> = vec![req(9)];
        waiting[0].deadline_steps = Some(15);
        let residents = [view(0, Some(15), 3), view(1, Some(12), 2)];
        let c = AdmissionCtx {
            waiting: &waiting,
            paused: &[],
            residents: &residents,
            clock: 10,
            free_slots: 0,
            active: 2,
            active_per_model: &[2],
            prefill_chunk: 1,
            quarantined: &[],
        };
        assert!(Edf::preemptive().preempt(&c).is_empty());
    }

    #[test]
    fn preemptive_priority_displaces_strictly_lower_classes_only() {
        let mut waiting: Vec<GenRequest> = vec![req(9), req(10)];
        waiting[0].priority = Priority::Interactive;
        waiting[1].priority = Priority::Standard;
        let mut residents = [view(0, None, 10), view(1, None, 10), view(2, None, 10)];
        residents[0].priority = Priority::Batch;
        residents[1].priority = Priority::Standard;
        residents[2].priority = Priority::Batch;
        let c = AdmissionCtx {
            waiting: &waiting,
            paused: &[],
            residents: &residents,
            clock: 0,
            free_slots: 0,
            active: 3,
            active_per_model: &[3],
            prefill_chunk: 1,
            quarantined: &[],
        };
        assert!(PriorityClasses::default().preempt(&c).is_empty());
        // Interactive displaces the youngest Batch resident (2), then
        // Standard displaces the remaining Batch one (0). The Standard
        // resident (1) is never paused for the Standard arrival —
        // classes are strict, equals never churn each other.
        assert_eq!(PriorityClasses::preemptive().preempt(&c), vec![2, 0]);
    }

    #[test]
    fn wfq_grants_idle_capacity_to_the_backlogged_model() {
        // Only model 1 has waiting work: it gets every slot regardless
        // of weights (work conservation).
        let mut waiting: Vec<GenRequest> = (0..3).map(req).collect();
        for r in &mut waiting {
            r.model = 1;
        }
        let mut wfq = WeightedFair::new(vec![10.0, 1.0]);
        assert_eq!(wfq.select(&ctx(&waiting, 2, 0, &[0, 0])), vec![0, 1]);
    }

    #[test]
    fn wfq_splits_a_round_by_weight() {
        // Both models backlogged, equal starting service: a 2:1 weight
        // over 3 slots grants 2 to model 0 and 1 to model 1.
        let mut waiting: Vec<GenRequest> = (0..6).map(req).collect();
        for (i, r) in waiting.iter_mut().enumerate() {
            r.model = i % 2;
        }
        let mut wfq = WeightedFair::new(vec![2.0, 1.0]);
        let picks = wfq.select(&ctx(&waiting, 3, 0, &[0, 0]));
        let m0 = picks.iter().filter(|&&i| waiting[i].model == 0).count();
        assert_eq!((m0, picks.len() - m0), (2, 1));
    }

    #[test]
    fn wfq_catches_up_an_underserved_model() {
        // Model 1 has been starved (service imbalance): it is granted
        // first even at a lower weight.
        let mut waiting: Vec<GenRequest> = (0..2).map(req).collect();
        waiting[0].model = 0;
        waiting[1].model = 1;
        let mut wfq = WeightedFair::new(vec![1.0, 1.0]);
        // Accrue service for model 0 only: 10 steps of one resident seq.
        for _ in 0..10 {
            wfq.select(&ctx(&[], 0, 1, &[1, 0]));
        }
        let picks = wfq.select(&ctx(&waiting, 1, 0, &[0, 0]));
        assert_eq!(picks, vec![1]);
    }

    #[test]
    #[should_panic(expected = "WFQ weights must be positive")]
    fn wfq_rejects_non_positive_weights() {
        WeightedFair::new(vec![1.0, 0.0]);
    }

    #[test]
    fn every_listed_name_constructs_its_policy() {
        for name in POLICY_NAMES {
            let policy = policy_by_name(name).expect("listed name must construct");
            assert_eq!(policy.name(), name);
        }
        let msg = match policy_by_name("round-robin") {
            Ok(_) => panic!("unknown name must error"),
            Err(e) => e.to_string(),
        };
        for name in POLICY_NAMES {
            assert!(msg.contains(name), "error must list {name:?}: {msg}");
        }
    }
}
