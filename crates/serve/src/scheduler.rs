//! Admission policies: *which* waiting requests join the batch, and in
//! what order.
//!
//! PR 1's scheduler only chose *how many* requests to admit from the
//! front of one FIFO; everything latency-shaped (deadlines, priorities,
//! per-model fairness) then had to be enforced after the fact by
//! eviction. A [`Policy`] instead selects *which* requests to admit by
//! returning indices into the full waiting queue, so ordering decisions
//! move where they belong — ahead of admission:
//!
//! * [`Fifo`] — arrival order, fill every free slot (PR 1's continuous
//!   batching);
//! * [`StaticBatching`] — arrival order, but only when the engine is
//!   idle (the static baseline every serving paper compares against);
//! * [`Edf`] — earliest absolute deadline first; requests whose deadline
//!   is provably unmeetable are evicted *before* admission
//!   ([`Policy::evicts_doomed`]) so they never burn a slot;
//! * [`PriorityClasses`] — strict [`crate::request::Priority`] classes,
//!   FIFO within a class;
//! * [`WeightedFair`] — weighted fair queueing across [`ModelId`]s
//!   sharing one slot pool: long-run slot shares converge to the
//!   configured weights while any backlogged model can always make
//!   progress.
//!
//! Policies only reorder admission. Request *outputs* are policy-
//! independent (each request samples with its own seeded RNG), which is
//! the bit-identity invariant the engine's equivalence tests pin.

use crate::registry::ModelId;
use crate::request::GenRequest;

/// What a policy sees when the engine asks it to admit: the entire
/// waiting queue in arrival order plus the engine state a selection
/// rule can key on.
#[derive(Debug)]
pub struct AdmissionCtx<'a> {
    /// Arrived, unadmitted requests in arrival order.
    pub waiting: &'a [GenRequest],
    /// Current engine step.
    pub clock: u64,
    /// Free slots this step (an upper bound on admissions).
    pub free_slots: usize,
    /// Resident sequences.
    pub active: usize,
    /// Resident sequences per registered model ([`ModelId`]-indexed).
    pub active_per_model: &'a [usize],
    /// The engine's prefill-chunk budget (prompt tokens one sequence
    /// may consume per step) — feasibility math depends on it.
    pub prefill_chunk: usize,
}

/// An admission policy: selects which waiting requests join this step.
pub trait Policy {
    /// Indices into `ctx.waiting` to admit this step, in admission
    /// order. The engine ignores out-of-range and duplicate indices and
    /// truncates to `ctx.free_slots`, so policies may over-select.
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize>;

    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Whether the engine should evict waiting requests whose deadline
    /// is provably unmeetable *before* admission (see
    /// [`GenRequest::min_steps_to_complete`]). Deadline-aware policies
    /// return `true` so doomed requests never occupy a slot; FIFO keeps
    /// the PR 1 behavior of discovering the miss at expiry.
    fn evicts_doomed(&self) -> bool {
        false
    }
}

/// Every name [`policy_by_name`] accepts — the CLI policy vocabulary
/// (benches and demos validate flags against this, so the name list
/// lives in exactly one place).
pub const POLICY_NAMES: [&str; 5] = ["fifo", "static", "edf", "priority", "wfq"];

/// Constructs a policy from its CLI name; `None` for an unknown name.
/// `"wfq"` gets equal weights — build [`WeightedFair::new`] directly
/// for custom weights.
pub fn policy_by_name(name: &str) -> Option<Box<dyn Policy>> {
    match name {
        "fifo" => Some(Box::new(Fifo)),
        "static" => Some(Box::new(StaticBatching)),
        "edf" => Some(Box::new(Edf)),
        "priority" => Some(Box::new(PriorityClasses)),
        "wfq" => Some(Box::new(WeightedFair::equal())),
        _ => None,
    }
}

/// Arrival-order admission into every free slot — token-level
/// continuous batching over one FIFO (the PR 1 default).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl Policy for Fifo {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        (0..ctx.waiting.len().min(ctx.free_slots)).collect()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Static batching: admit a full batch in arrival order only when the
/// engine is idle, so short sequences idle their slots while the
/// longest batch member finishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticBatching;

impl Policy for StaticBatching {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        if ctx.active == 0 {
            (0..ctx.waiting.len().min(ctx.free_slots)).collect()
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Earliest-deadline-first admission. Requests without a deadline sort
/// last (deadline = ∞); ties break on id, so deadline-free traffic
/// degenerates to FIFO. Pairs with pre-admission doomed eviction: a
/// request that can no longer meet its deadline even if admitted now is
/// dropped instead of wasting slot steps on a guaranteed miss.
#[derive(Debug, Clone, Copy, Default)]
pub struct Edf;

impl Policy for Edf {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        let mut order: Vec<usize> = (0..ctx.waiting.len()).collect();
        order.sort_by_key(|&i| {
            let r = &ctx.waiting[i];
            (r.absolute_deadline().unwrap_or(u64::MAX), r.id)
        });
        order.truncate(ctx.free_slots);
        order
    }

    fn name(&self) -> &'static str {
        "edf"
    }

    fn evicts_doomed(&self) -> bool {
        true
    }
}

/// Strict priority classes: every [`crate::request::Priority::Interactive`]
/// request is admitted before any `Standard` one, and so on; FIFO
/// within a class. Non-preemptive — a resident low-class sequence keeps
/// its slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityClasses;

impl Policy for PriorityClasses {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        let mut order: Vec<usize> = (0..ctx.waiting.len()).collect();
        order.sort_by_key(|&i| (ctx.waiting[i].priority, ctx.waiting[i].id));
        order.truncate(ctx.free_slots);
        order
    }

    fn name(&self) -> &'static str {
        "priority"
    }
}

/// Weighted fair queueing across models sharing one slot pool.
///
/// Each model accrues *service* — one unit per resident sequence per
/// step (slot-steps, the resource the pool actually rations). Free
/// slots go to the backlogged model with the smallest
/// `service / weight`, FIFO within a model, so long-run slot shares of
/// saturated models converge to `weight_m / Σ weights` while an idle
/// model's unused share flows to the others (work-conserving).
#[derive(Debug, Clone)]
pub struct WeightedFair {
    weights: Vec<f64>,
    service: Vec<f64>,
}

impl WeightedFair {
    /// One weight per [`ModelId`] in registry order. Models beyond the
    /// configured weights (or an empty list) weigh `1.0`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive or non-finite weight — an unserviceable
    /// configuration.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0),
            "WFQ weights must be positive and finite: {weights:?}"
        );
        WeightedFair {
            weights,
            service: Vec::new(),
        }
    }

    /// Equal weights for every model — plain fair queueing.
    pub fn equal() -> Self {
        WeightedFair::new(Vec::new())
    }

    fn weight(&self, model: ModelId) -> f64 {
        self.weights.get(model).copied().unwrap_or(1.0)
    }

    /// Service accrued by `model` so far, in slot-steps.
    pub fn service(&self, model: ModelId) -> f64 {
        self.service.get(model).copied().unwrap_or(0.0)
    }
}

impl Policy for WeightedFair {
    fn select(&mut self, ctx: &AdmissionCtx<'_>) -> Vec<usize> {
        // Charge occupancy: every resident sequence consumed one
        // slot-step since the last admission round.
        if self.service.len() < ctx.active_per_model.len() {
            self.service.resize(ctx.active_per_model.len(), 0.0);
        }
        for (m, &a) in ctx.active_per_model.iter().enumerate() {
            self.service[m] += a as f64;
        }

        // Oldest-first waiting indices per model.
        let n_models = self
            .service
            .len()
            .max(ctx.waiting.iter().map(|r| r.model + 1).max().unwrap_or(0));
        if self.service.len() < n_models {
            self.service.resize(n_models, 0.0);
        }
        let mut queues: Vec<std::collections::VecDeque<usize>> =
            vec![std::collections::VecDeque::new(); n_models];
        for (i, r) in ctx.waiting.iter().enumerate() {
            queues[r.model].push_back(i);
        }

        // Hand each free slot to the backlogged model with the least
        // normalized service, provisionally charging one slot-step per
        // grant so one round spreads slots instead of dumping them all
        // on the currently least-served model.
        let mut virt = self.service.clone();
        let mut picks = Vec::new();
        for _ in 0..ctx.free_slots {
            let Some(best) = (0..n_models)
                .filter(|&m| !queues[m].is_empty())
                .min_by(|&a, &b| {
                    let ka = virt[a] / self.weight(a);
                    let kb = virt[b] / self.weight(b);
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
                })
            else {
                break;
            };
            picks.push(queues[best].pop_front().expect("model is backlogged"));
            virt[best] += 1.0;
        }
        picks
    }

    fn name(&self) -> &'static str {
        "wfq"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Priority;

    fn req(id: u64) -> GenRequest {
        GenRequest::greedy(id, vec![1, 2], 4)
    }

    fn ctx<'a>(
        waiting: &'a [GenRequest],
        free_slots: usize,
        active: usize,
        active_per_model: &'a [usize],
    ) -> AdmissionCtx<'a> {
        AdmissionCtx {
            waiting,
            clock: 0,
            free_slots,
            active,
            active_per_model,
            prefill_chunk: 1,
        }
    }

    #[test]
    fn fifo_fills_free_slots_in_arrival_order() {
        let waiting: Vec<GenRequest> = (0..5).map(req).collect();
        assert_eq!(Fifo.select(&ctx(&waiting, 3, 2, &[2])), vec![0, 1, 2]);
        assert_eq!(Fifo.select(&ctx(&waiting, 8, 0, &[0])), vec![0, 1, 2, 3, 4]);
        assert_eq!(Fifo.select(&ctx(&waiting, 0, 4, &[4])), Vec::<usize>::new());
    }

    #[test]
    fn static_waits_for_drain() {
        let waiting: Vec<GenRequest> = (0..4).map(req).collect();
        assert!(StaticBatching.select(&ctx(&waiting, 4, 1, &[1])).is_empty());
        assert_eq!(
            StaticBatching.select(&ctx(&waiting, 4, 0, &[0])),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn edf_orders_by_absolute_deadline_then_id() {
        let mut waiting: Vec<GenRequest> = (0..4).map(req).collect();
        waiting[0].deadline_steps = Some(50); // abs 50
        waiting[1].deadline_steps = None; // ∞
        waiting[2].arrival_step = 5;
        waiting[2].deadline_steps = Some(10); // abs 15
        waiting[3].deadline_steps = Some(50); // abs 50, later id
        assert_eq!(Edf.select(&ctx(&waiting, 4, 0, &[0])), vec![2, 0, 3, 1]);
        assert_eq!(Edf.select(&ctx(&waiting, 2, 0, &[0])), vec![2, 0]);
        assert!(Edf.evicts_doomed());
    }

    #[test]
    fn priority_is_strict_and_fifo_within_class() {
        let mut waiting: Vec<GenRequest> = (0..5).map(req).collect();
        waiting[0].priority = Priority::Batch;
        waiting[1].priority = Priority::Standard;
        waiting[2].priority = Priority::Interactive;
        waiting[3].priority = Priority::Interactive;
        waiting[4].priority = Priority::Standard;
        assert_eq!(
            PriorityClasses.select(&ctx(&waiting, 5, 0, &[0])),
            vec![2, 3, 1, 4, 0]
        );
    }

    #[test]
    fn wfq_grants_idle_capacity_to_the_backlogged_model() {
        // Only model 1 has waiting work: it gets every slot regardless
        // of weights (work conservation).
        let mut waiting: Vec<GenRequest> = (0..3).map(req).collect();
        for r in &mut waiting {
            r.model = 1;
        }
        let mut wfq = WeightedFair::new(vec![10.0, 1.0]);
        assert_eq!(wfq.select(&ctx(&waiting, 2, 0, &[0, 0])), vec![0, 1]);
    }

    #[test]
    fn wfq_splits_a_round_by_weight() {
        // Both models backlogged, equal starting service: a 2:1 weight
        // over 3 slots grants 2 to model 0 and 1 to model 1.
        let mut waiting: Vec<GenRequest> = (0..6).map(req).collect();
        for (i, r) in waiting.iter_mut().enumerate() {
            r.model = i % 2;
        }
        let mut wfq = WeightedFair::new(vec![2.0, 1.0]);
        let picks = wfq.select(&ctx(&waiting, 3, 0, &[0, 0]));
        let m0 = picks.iter().filter(|&&i| waiting[i].model == 0).count();
        assert_eq!((m0, picks.len() - m0), (2, 1));
    }

    #[test]
    fn wfq_catches_up_an_underserved_model() {
        // Model 1 has been starved (service imbalance): it is granted
        // first even at a lower weight.
        let mut waiting: Vec<GenRequest> = (0..2).map(req).collect();
        waiting[0].model = 0;
        waiting[1].model = 1;
        let mut wfq = WeightedFair::new(vec![1.0, 1.0]);
        // Accrue service for model 0 only: 10 steps of one resident seq.
        for _ in 0..10 {
            wfq.select(&ctx(&[], 0, 1, &[1, 0]));
        }
        let picks = wfq.select(&ctx(&waiting, 1, 0, &[0, 0]));
        assert_eq!(picks, vec![1]);
    }

    #[test]
    #[should_panic(expected = "WFQ weights must be positive")]
    fn wfq_rejects_non_positive_weights() {
        WeightedFair::new(vec![1.0, 0.0]);
    }

    #[test]
    fn every_listed_name_constructs_its_policy() {
        for name in POLICY_NAMES {
            let policy = policy_by_name(name).expect("listed name must construct");
            assert_eq!(policy.name(), name);
        }
        assert!(policy_by_name("round-robin").is_none());
    }
}
