//! The fixed slot pool of per-sequence recurrent states.
//!
//! Because Mamba2's decode state is fixed-size (`LayerState` holds a conv
//! window plus the SSM hidden state, independent of sequence length),
//! admission control degenerates to slot counting: every resident
//! sequence costs the same, statically known number of bytes. This is
//! the contrast with paged-KV transformer serving, where admission must
//! reason about growing, length-dependent cache footprints.
//!
//! The same property makes *preemption* nearly free: pausing a resident
//! sequence is one fixed-size state copy out of its slot
//! ([`SlotPool::states`] → [`crate::backend::DecodeBackend::save_state`]),
//! after which the slot is released for urgent work; resuming copies the
//! snapshot back into any free slot. There is no KV cache to spill or
//! re-page, so the engine's preemptive policies treat pause/resume as an
//! ordinary scheduling move rather than a last resort.

use lightmamba_model::{MambaModel, ModelState};

/// A fixed pool of `ModelState`s with O(1) slot alloc/free (allocation
/// zeroes the fixed-size state; no heap traffic after construction).
#[derive(Debug, Clone)]
pub struct SlotPool {
    states: Vec<ModelState>,
    free: Vec<usize>,
    in_use: Vec<bool>,
}

impl SlotPool {
    /// Builds a pool of `capacity` zeroed states shaped like `template`.
    /// Taking a state (not a model) keeps the pool backend-agnostic: any
    /// [`crate::backend::DecodeBackend`] whose states match the template
    /// can host sequences in this pool.
    pub fn new(template: &ModelState, capacity: usize) -> Self {
        SlotPool {
            states: (0..capacity)
                .map(|_| {
                    let mut s = template.clone();
                    s.reset();
                    s
                })
                .collect(),
            free: (0..capacity).rev().collect(),
            in_use: vec![false; capacity],
        }
    }

    /// Convenience: a pool shaped for one reference model.
    pub fn for_model(model: &MambaModel, capacity: usize) -> Self {
        SlotPool::new(&model.new_state(), capacity)
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.states.len()
    }

    /// Currently free slots.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Currently occupied slots.
    pub fn in_use_count(&self) -> usize {
        self.capacity() - self.free_count()
    }

    /// Claims a slot, resetting its state for a fresh sequence. Returns
    /// `None` when the pool is exhausted.
    pub fn alloc(&mut self) -> Option<usize> {
        let slot = self.free.pop()?;
        self.in_use[slot] = true;
        self.states[slot].reset();
        Some(slot)
    }

    /// Returns a slot to the pool.
    ///
    /// # Panics
    ///
    /// Panics on double-free or out-of-range slots — both are engine
    /// bugs, not recoverable conditions.
    pub fn release(&mut self, slot: usize) {
        assert!(slot < self.capacity(), "slot {slot} out of range");
        assert!(self.in_use[slot], "double free of slot {slot}");
        self.in_use[slot] = false;
        self.free.push(slot);
    }

    /// The backing states, indexed by slot (the batched forward API
    /// takes this slice plus `(slot, token)` pairs).
    pub fn states_mut(&mut self) -> &mut [ModelState] {
        &mut self.states
    }

    /// Read-only view of the backing states — what
    /// [`crate::backend::DecodeBackend::save_state`] snapshots when the
    /// engine preempts a resident sequence (the slot itself is then
    /// released and may be rewound for another sequence; the snapshot
    /// owns the paused sequence's entire resident footprint).
    pub fn states(&self) -> &[ModelState] {
        &self.states
    }

    /// Bytes of recurrent state one slot keeps at `bits` bits/element —
    /// the per-sequence admission cost.
    pub fn state_bytes_per_slot(&self, bits: f64) -> f64 {
        self.states
            .first()
            .map(|s| s.total_state_bytes(bits))
            .unwrap_or(0.0)
    }

    /// Bytes across the whole pool at `bits` bits/element.
    pub fn total_state_bytes(&self, bits: f64) -> f64 {
        self.state_bytes_per_slot(bits) * self.capacity() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightmamba_model::MambaConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool(capacity: usize) -> SlotPool {
        let model =
            MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(1)).unwrap();
        SlotPool::for_model(&model, capacity)
    }

    #[test]
    fn alloc_free_conserves_slots() {
        let mut p = pool(4);
        assert_eq!(p.free_count(), 4);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(p.in_use_count(), 2);
        p.release(a);
        assert_eq!(p.free_count(), 3);
        let c = p.alloc().unwrap();
        assert_eq!(c, a, "LIFO reuse of the freed slot");
        assert_eq!(p.free_count() + p.in_use_count(), p.capacity());
    }

    #[test]
    fn exhausted_pool_returns_none() {
        let mut p = pool(2);
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_some());
        assert!(p.alloc().is_none());
    }

    #[test]
    fn alloc_resets_state() {
        let mut p = pool(1);
        let s = p.alloc().unwrap();
        p.states_mut()[s].layers[0].h[0] = 42.0;
        p.release(s);
        let s2 = p.alloc().unwrap();
        assert_eq!(s2, s);
        assert_eq!(p.states_mut()[s2].layers[0].h[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut p = pool(2);
        let s = p.alloc().unwrap();
        p.release(s);
        p.release(s);
    }

    #[test]
    fn state_bytes_accounting_is_per_slot_constant() {
        let p = pool(8);
        let per = p.state_bytes_per_slot(16.0);
        assert!(per > 0.0);
        assert_eq!(p.total_state_bytes(16.0), per * 8.0);
    }
}
