//! Synthetic multi-user traffic: Poisson arrivals over workload profiles.
//!
//! Real serving traffic mixes short chatty exchanges with long-document
//! summarization and bursty code completion. The profiles here bound
//! prompt/output lengths per class and a scenario mixes them with
//! weights; arrivals follow a Poisson process in engine steps. Token ids
//! are uniform over the model vocabulary — the engine's cost is length-
//! and batch-shaped, not content-shaped, so uniform tokens exercise the
//! same scheduling behavior as natural text.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lightmamba_model::sampler::Sampler;

use crate::request::{GenRequest, Priority};

/// Length bounds and arrival rate of one workload class.
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Class name (reports group by it).
    pub name: &'static str,
    /// Prompt length range in tokens.
    pub prompt_len: Range<usize>,
    /// Generation length range in tokens.
    pub gen_len: Range<usize>,
    /// Decoding strategy requests of this class use.
    pub sampler: Sampler,
    /// Priority class requests of this profile carry (the priority
    /// policy keys on it; others ignore it).
    pub priority: Priority,
    /// Latency budget range in engine steps (`None` = no deadline);
    /// sampled per request when set.
    pub deadline_steps: Option<Range<u64>>,
}

impl TrafficProfile {
    /// Chat turns: short prompts, short replies.
    pub fn chat() -> Self {
        TrafficProfile {
            name: "chat",
            prompt_len: 8..48,
            gen_len: 8..48,
            sampler: Sampler::TopK {
                k: 16,
                temperature: 0.8,
            },
            priority: Priority::Interactive,
            deadline_steps: None,
        }
    }

    /// Summarization: long prompts, short outputs.
    pub fn summarization() -> Self {
        TrafficProfile {
            name: "summarization",
            prompt_len: 96..256,
            gen_len: 8..32,
            sampler: Sampler::Greedy,
            priority: Priority::Batch,
            deadline_steps: None,
        }
    }

    /// A slot hog: moderate prompt, very long deadline-free generation
    /// at batch priority — the resident that preemptive policies exist
    /// to displace (offline eval sweeps, bulk translation).
    pub fn hog() -> Self {
        TrafficProfile {
            name: "hog",
            prompt_len: 16..64,
            gen_len: 96..192,
            sampler: Sampler::Greedy,
            priority: Priority::Batch,
            deadline_steps: None,
        }
    }

    /// Code completion: medium prompts, medium outputs, low temperature.
    pub fn code_completion() -> Self {
        TrafficProfile {
            name: "code",
            prompt_len: 32..128,
            gen_len: 16..64,
            sampler: Sampler::Temperature(0.2),
            priority: Priority::Standard,
            deadline_steps: None,
        }
    }

    /// Attaches a per-request latency budget, sampled from `range`.
    pub fn with_deadline(mut self, range: Range<u64>) -> Self {
        self.deadline_steps = Some(range);
        self
    }

    /// Overrides the profile's priority class.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// How requests arrive over the run horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open-loop Poisson arrivals at rate λ per engine step.
    Poisson(f64),
    /// Closed-loop burst: all `n` requests arrive at step 0 (the
    /// classic offline-throughput workload).
    BurstAtStart(usize),
}

/// A weighted mixture of profiles plus an arrival process.
#[derive(Debug, Clone)]
pub struct TrafficScenario {
    /// Scenario name.
    pub name: &'static str,
    /// Profiles with mixture weights (need not sum to 1).
    pub profiles: Vec<(f64, TrafficProfile)>,
    /// How requests arrive.
    pub arrivals: ArrivalProcess,
    /// When set, every request's prompt is prepended with the *same*
    /// `n`-token system prompt and tagged with
    /// [`crate::request::GenRequest::shared_prefix`], so an engine with
    /// the prefix cache on prefills it once and every later request
    /// restores the snapshot (see [`TrafficScenario::shared_system_prompt`]).
    pub shared_prefix_len: Option<usize>,
}

impl TrafficScenario {
    /// Pure chat traffic.
    pub fn chat(arrivals_per_step: f64) -> Self {
        TrafficScenario {
            name: "chat",
            profiles: vec![(1.0, TrafficProfile::chat())],
            arrivals: ArrivalProcess::Poisson(arrivals_per_step),
            shared_prefix_len: None,
        }
    }

    /// The mixed production-like scenario: mostly chat, some code, a
    /// trickle of long summarizations.
    pub fn mixed(arrivals_per_step: f64) -> Self {
        TrafficScenario {
            name: "mixed",
            profiles: vec![
                (0.6, TrafficProfile::chat()),
                (0.3, TrafficProfile::code_completion()),
                (0.1, TrafficProfile::summarization()),
            ],
            arrivals: ArrivalProcess::Poisson(arrivals_per_step),
            shared_prefix_len: None,
        }
    }

    /// Multi-turn chat sessions: first turns of `n` concurrent
    /// sessions, each a short opening prompt with a short reply
    /// (follow-up turns are shorter still — the conversation so far
    /// lives in the session's saved state, so a follow-up carries only
    /// the user's new message). Follow-up *arrival* is closed-loop — a
    /// session's next turn departs only after the prior reply — so the
    /// generator emits the openers and the session studies draw
    /// follow-ups live via [`TrafficGenerator::follow_up_turn`].
    pub fn chat_sessions(n: usize) -> Self {
        TrafficScenario {
            name: "chat_sessions",
            profiles: vec![(
                1.0,
                TrafficProfile {
                    name: "chat-turn",
                    prompt_len: 6..24,
                    gen_len: 6..16,
                    sampler: Sampler::TopK {
                        k: 16,
                        temperature: 0.8,
                    },
                    priority: Priority::Interactive,
                    deadline_steps: None,
                },
            )],
            arrivals: ArrivalProcess::BurstAtStart(n),
            shared_prefix_len: None,
        }
    }

    /// A closed-loop burst of `n` chat requests.
    pub fn burst(n: usize) -> Self {
        TrafficScenario {
            name: "burst",
            profiles: vec![(1.0, TrafficProfile::chat())],
            arrivals: ArrivalProcess::BurstAtStart(n),
            shared_prefix_len: None,
        }
    }

    /// The deadline-heavy scenario deadline-aware policies compete on:
    /// interactive chat with tight per-request budgets sharing the pool
    /// with deadline-free batch summarization. Under overload a FIFO
    /// queue strands the chat turns behind long batch prompts until
    /// their budgets lapse; EDF reorders admission around the budgets.
    pub fn deadline_heavy(arrivals_per_step: f64) -> Self {
        TrafficScenario {
            name: "deadline_heavy",
            profiles: vec![
                (0.7, TrafficProfile::chat().with_deadline(40..160)),
                (0.3, TrafficProfile::summarization()),
            ],
            arrivals: ArrivalProcess::Poisson(arrivals_per_step),
            shared_prefix_len: None,
        }
    }

    /// The preemption-heavy scenario preemptive policies compete on:
    /// deadline-free hogs that camp on slots for hundreds of steps
    /// ([`TrafficProfile::hog`]) mixed with short interactive turns on
    /// *tight* budgets. Admission-order tricks alone cannot save the
    /// tight deadlines once hogs are resident — EDF can only reorder
    /// the queue while every slot stays camped — so the gap between
    /// [`crate::scheduler::Edf::preemptive`] and plain EDF on
    /// `deadline_hit_rate()` is the scenario's headline (pinned by
    /// test, shown by `serve_traffic --preempt`).
    pub fn preemption_heavy(arrivals_per_step: f64) -> Self {
        TrafficScenario {
            name: "preemption_heavy",
            profiles: vec![
                (0.3, TrafficProfile::hog()),
                (
                    0.7,
                    TrafficProfile {
                        name: "urgent-chat",
                        prompt_len: 8..32,
                        gen_len: 4..16,
                        sampler: Sampler::TopK {
                            k: 16,
                            temperature: 0.8,
                        },
                        priority: Priority::Interactive,
                        deadline_steps: Some(24..64),
                    },
                ),
            ],
            arrivals: ArrivalProcess::Poisson(arrivals_per_step),
            shared_prefix_len: None,
        }
    }

    /// The shared-system-prompt scenario the prefix cache competes on:
    /// a closed-loop burst of `n` assistant turns, each carrying the
    /// *same* `prefix_len`-token system prompt ahead of a short user
    /// tail. Without the cache every request re-prefills the system
    /// prompt; with it the first request harvests one snapshot and the
    /// rest restore it for the price of a single state move each
    /// (pinned by test, shown by `serve_traffic --prefix-cache`).
    ///
    /// Greedy sampling keeps the cache-on/cache-off comparison
    /// bit-identical on outputs, so the study isolates timing.
    pub fn shared_system_prompt(n: usize, prefix_len: usize) -> Self {
        TrafficScenario {
            name: "shared_system_prompt",
            profiles: vec![(
                1.0,
                TrafficProfile {
                    name: "assistant-turn",
                    prompt_len: 4..16,
                    gen_len: 8..24,
                    sampler: Sampler::Greedy,
                    priority: Priority::Interactive,
                    deadline_steps: None,
                },
            )],
            arrivals: ArrivalProcess::BurstAtStart(n),
            shared_prefix_len: Some(prefix_len.max(1)),
        }
    }
}

/// Deterministic request generator over a scenario.
#[derive(Debug)]
pub struct TrafficGenerator {
    scenario: TrafficScenario,
    vocab_size: usize,
    rng: StdRng,
    next_id: u64,
    /// Registered models requests are spread over (round-robin by id).
    models: usize,
    /// The scenario's shared system prompt, drawn once at construction
    /// (empty when [`TrafficScenario::shared_prefix_len`] is unset) —
    /// every emitted request carries these exact tokens first.
    shared_prefix: Vec<u32>,
}

impl TrafficGenerator {
    /// Builds a generator; `vocab_size` bounds sampled token ids.
    ///
    /// # Panics
    ///
    /// Panics when the scenario has no profiles or a zero vocabulary —
    /// both unserviceable configurations.
    pub fn new(scenario: TrafficScenario, vocab_size: usize, seed: u64) -> Self {
        assert!(
            !scenario.profiles.is_empty(),
            "traffic scenario {:?} needs at least one profile",
            scenario.name
        );
        assert!(vocab_size > 0, "vocab_size must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        // Drawn before any request so scenarios without a shared prefix
        // consume no extra randomness (their streams stay byte-stable).
        let shared_prefix = scenario
            .shared_prefix_len
            .map(|len| {
                (0..len.max(1))
                    .map(|_| rng.gen_range(0..vocab_size) as u32)
                    .collect()
            })
            .unwrap_or_default();
        TrafficGenerator {
            scenario,
            vocab_size,
            rng,
            next_id: 0,
            models: 1,
            shared_prefix,
        }
    }

    /// Spreads requests over `models` registered backends, round-robin
    /// by request id — symmetric load, so per-model serving metrics are
    /// directly comparable.
    ///
    /// # Panics
    ///
    /// Panics on zero models.
    pub fn with_models(mut self, models: usize) -> Self {
        assert!(models > 0, "traffic needs at least one model");
        self.models = models;
        self
    }

    /// Draws a Poisson count via inversion (rates here are ≲ a few
    /// arrivals per step, where this is exact and fast).
    fn poisson(&mut self, lambda: f64) -> usize {
        if lambda <= 0.0 {
            return 0;
        }
        let limit = (-lambda).exp();
        let mut product: f64 = self.rng.gen();
        let mut count = 0usize;
        while product > limit && count < 10_000 {
            count += 1;
            product *= self.rng.gen::<f64>();
        }
        count
    }

    fn sample_profile(&mut self) -> TrafficProfile {
        let total: f64 = self.scenario.profiles.iter().map(|(w, _)| w).sum();
        let mut pick = self.rng.gen::<f64>() * total;
        for (w, p) in &self.scenario.profiles {
            pick -= w;
            if pick <= 0.0 {
                return p.clone();
            }
        }
        self.scenario.profiles[0].1.clone()
    }

    fn make_request(&mut self, arrival_step: u64) -> GenRequest {
        let profile = self.sample_profile();
        let prompt_len = self.rng.gen_range(profile.prompt_len.clone());
        let gen_len = self.rng.gen_range(profile.gen_len.clone());
        let tail = (0..prompt_len.max(1)).map(|_| self.rng.gen_range(0..self.vocab_size) as u32);
        let (prompt, shared_prefix) = if self.shared_prefix.is_empty() {
            (tail.collect(), None)
        } else {
            let mut prompt = self.shared_prefix.clone();
            prompt.extend(tail);
            (prompt, Some(self.shared_prefix.len()))
        };
        let id = self.next_id;
        self.next_id += 1;
        let deadline_steps = profile
            .deadline_steps
            .clone()
            .map(|range| self.rng.gen_range(range));
        GenRequest {
            id,
            model: (id % self.models as u64) as usize,
            priority: profile.priority,
            prompt,
            max_new_tokens: gen_len.max(1),
            sampler: profile.sampler,
            seed: id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            arrival_step,
            deadline_steps,
            eos_token: None,
            session: None,
            shared_prefix,
        }
    }

    /// Draws one *follow-up* chat turn: a short continuation prompt (the
    /// user's next message — history stays in the session state, so the
    /// follow-up carries only the new tokens) with the first profile's
    /// reply length. Used by the closed-loop session studies, which
    /// submit follow-ups only after the prior turn's reply lands — an
    /// arrival pattern the open-loop [`TrafficGenerator::generate`]
    /// cannot pre-compute.
    pub fn follow_up_turn(&mut self) -> (Vec<u32>, usize) {
        let profile = self.scenario.profiles[0].1.clone();
        let prompt_len = self.rng.gen_range(profile.prompt_len.clone());
        let gen_len = self.rng.gen_range(profile.gen_len.clone());
        let prompt = (0..prompt_len.max(1))
            .map(|_| self.rng.gen_range(0..self.vocab_size) as u32)
            .collect();
        (prompt, gen_len.max(1))
    }

    /// Generates all arrivals over `steps` engine steps
    /// ([`ArrivalProcess::BurstAtStart`] ignores the horizon and emits
    /// everything at step 0).
    pub fn generate(&mut self, steps: u64) -> Vec<GenRequest> {
        let mut out = Vec::new();
        match self.scenario.arrivals {
            ArrivalProcess::BurstAtStart(n) => {
                for _ in 0..n {
                    out.push(self.make_request(0));
                }
            }
            ArrivalProcess::Poisson(lambda) => {
                for step in 0..steps {
                    let n = self.poisson(lambda);
                    for _ in 0..n {
                        out.push(self.make_request(step));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = TrafficGenerator::new(TrafficScenario::mixed(0.5), 256, 7);
        let mut b = TrafficGenerator::new(TrafficScenario::mixed(0.5), 256, 7);
        let ra = a.generate(200);
        let rb = b.generate(200);
        assert_eq!(ra.len(), rb.len());
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.prompt, y.prompt);
            assert_eq!(x.arrival_step, y.arrival_step);
        }
    }

    #[test]
    fn poisson_rate_is_roughly_lambda() {
        let mut g = TrafficGenerator::new(TrafficScenario::chat(0.5), 256, 3);
        let reqs = g.generate(4000);
        let rate = reqs.len() as f64 / 4000.0;
        assert!((0.4..0.6).contains(&rate), "rate {rate}");
    }

    #[test]
    fn burst_arrives_all_at_once() {
        let mut g = TrafficGenerator::new(TrafficScenario::burst(64), 256, 1);
        let reqs = g.generate(10);
        assert_eq!(reqs.len(), 64);
        assert!(reqs.iter().all(|r| r.arrival_step == 0));
    }

    #[test]
    fn prompts_respect_vocab_and_lengths() {
        let mut g = TrafficGenerator::new(TrafficScenario::mixed(1.0), 512, 9);
        for r in g.generate(300) {
            assert!(!r.prompt.is_empty());
            assert!(r.max_new_tokens >= 1);
            assert!(r.prompt.iter().all(|&t| (t as usize) < 512));
        }
    }

    #[test]
    fn deadline_heavy_emits_budgets_and_priorities() {
        let mut g = TrafficGenerator::new(TrafficScenario::deadline_heavy(0.8), 256, 5);
        let reqs = g.generate(400);
        let with_deadline: Vec<_> = reqs.iter().filter(|r| r.deadline_steps.is_some()).collect();
        assert!(!with_deadline.is_empty());
        for r in &with_deadline {
            assert_eq!(r.priority, Priority::Interactive);
            assert!((40..160).contains(&r.deadline_steps.unwrap()));
        }
        // The summarization fraction runs deadline-free at batch priority.
        assert!(reqs
            .iter()
            .any(|r| r.deadline_steps.is_none() && r.priority == Priority::Batch));
        let frac = with_deadline.len() as f64 / reqs.len() as f64;
        assert!((0.5..0.9).contains(&frac), "deadline fraction {frac}");
    }

    #[test]
    fn preemption_heavy_mixes_hogs_with_tight_deadlines() {
        let mut g = TrafficGenerator::new(TrafficScenario::preemption_heavy(0.5), 256, 5);
        let reqs = g.generate(400);
        let hogs: Vec<_> = reqs.iter().filter(|r| r.deadline_steps.is_none()).collect();
        let urgent: Vec<_> = reqs.iter().filter(|r| r.deadline_steps.is_some()).collect();
        assert!(!hogs.is_empty() && !urgent.is_empty());
        for h in &hogs {
            assert_eq!(h.priority, Priority::Batch);
            assert!(h.max_new_tokens >= 96, "hogs must camp on their slot");
        }
        for u in &urgent {
            assert_eq!(u.priority, Priority::Interactive);
            assert!((24..64).contains(&u.deadline_steps.unwrap()));
            assert!(u.max_new_tokens < 16);
        }
        let frac = urgent.len() as f64 / reqs.len() as f64;
        assert!((0.5..0.9).contains(&frac), "urgent fraction {frac}");
    }

    #[test]
    fn chat_sessions_emit_openers_and_deterministic_follow_ups() {
        let mut g = TrafficGenerator::new(TrafficScenario::chat_sessions(6), 256, 21);
        let openers = g.generate(1);
        assert_eq!(openers.len(), 6);
        assert!(openers.iter().all(|r| r.arrival_step == 0));
        assert!(openers
            .iter()
            .all(|r| r.priority == Priority::Interactive && r.deadline_steps.is_none()));
        let (prompt, gen_len) = g.follow_up_turn();
        assert!((1..24).contains(&prompt.len()));
        assert!((1..16).contains(&gen_len));
        assert!(prompt.iter().all(|&t| (t as usize) < 256));
        // Same seed, same follow-up stream.
        let mut h = TrafficGenerator::new(TrafficScenario::chat_sessions(6), 256, 21);
        h.generate(1);
        assert_eq!(h.follow_up_turn(), (prompt, gen_len));
    }

    #[test]
    fn shared_system_prompt_carries_one_identical_prefix() {
        let mut g = TrafficGenerator::new(TrafficScenario::shared_system_prompt(8, 12), 256, 17);
        let reqs = g.generate(1);
        assert_eq!(reqs.len(), 8);
        let prefix = reqs[0].prompt[..12].to_vec();
        for r in &reqs {
            assert_eq!(r.shared_prefix, Some(12));
            assert_eq!(&r.prompt[..12], &prefix[..], "one shared system prompt");
            assert!(r.prompt.len() > 12, "a user tail must remain to feed");
        }
        // Same seed, same prefix and tails.
        let mut h = TrafficGenerator::new(TrafficScenario::shared_system_prompt(8, 12), 256, 17);
        let again = h.generate(1);
        for (a, b) in reqs.iter().zip(&again) {
            assert_eq!(a.prompt, b.prompt);
        }
        // Scenarios without a prefix never tag requests.
        let mut plain = TrafficGenerator::new(TrafficScenario::burst(4), 256, 17);
        assert!(plain.generate(1).iter().all(|r| r.shared_prefix.is_none()));
    }

    #[test]
    fn ids_are_unique_and_ordered_by_arrival() {
        let mut g = TrafficGenerator::new(TrafficScenario::mixed(0.8), 256, 11);
        let reqs = g.generate(500);
        for w in reqs.windows(2) {
            assert!(w[0].id < w[1].id);
            assert!(w[0].arrival_step <= w[1].arrival_step);
        }
    }
}
