//! Chaos proptests: seeded fault injection crossed with preemption
//! churn, client cancellation, session turns, bounded-queue shedding,
//! and worker-thread counts. The pins: the engine never dies, every
//! submitted request retires exactly once with a terminal reason, no
//! slot / paused state / parked resume survives the drain, requests
//! that dodge the faults are bit-identical to a fault-free run, and
//! the thread count changes no outcome.

use std::collections::HashMap;

use lightmamba_model::{MambaConfig, MambaModel};
use lightmamba_quant::pipeline::{quantize_model, Method, QuantSpec};
use lightmamba_quant::QuantizedMamba;
use lightmamba_serve::backend::{FpBackend, W4A4Backend};
use lightmamba_serve::chaos::{ChaosBackend, FaultPlan};
use lightmamba_serve::engine::{EngineConfig, ServeEngine};
use lightmamba_serve::registry::ModelRegistry;
use lightmamba_serve::request::{FinishReason, GenRequest};
use lightmamba_serve::resilience::ResilienceConfig;
use lightmamba_serve::scheduler::Policy;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_model() -> MambaModel {
    MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(9)).unwrap()
}

fn tiny_w4a4(model: &MambaModel) -> QuantizedMamba {
    quantize_model(model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[]).unwrap()
}

/// Random request workloads: (arrival gap, prompt len, gen len, seed).
fn workload() -> impl Strategy<Value = Vec<(u64, Vec<u32>, usize, u64)>> {
    proptest::collection::vec(
        (
            0u64..4,
            proptest::collection::vec(0u32..256, 1..6),
            1usize..6,
            0u64..1_000_000,
        ),
        1..14,
    )
}

fn build_requests(spec: &[(u64, Vec<u32>, usize, u64)]) -> Vec<GenRequest> {
    let mut arrival = 0u64;
    spec.iter()
        .enumerate()
        .map(|(id, (gap, prompt, gen_len, seed))| {
            arrival += gap;
            let mut r = GenRequest::greedy(id as u64, prompt.clone(), *gen_len);
            r.arrival_step = arrival;
            r.seed = *seed;
            r.model = id % 2;
            r
        })
        .collect()
}

/// FIFO admission plus an arbitrary preemption schedule (same churn
/// driver the non-chaos property suite uses).
struct ChurnFifo {
    schedule: Vec<(usize, usize)>,
    step: usize,
}

impl ChurnFifo {
    fn new(schedule: Vec<(usize, usize)>) -> Self {
        ChurnFifo {
            schedule: if schedule.is_empty() {
                vec![(0, 0)]
            } else {
                schedule
            },
            step: 0,
        }
    }
}

impl Policy for ChurnFifo {
    fn select(&mut self, ctx: &lightmamba_serve::scheduler::AdmissionCtx<'_>) -> Vec<usize> {
        (0..ctx.n_candidates().min(ctx.free_slots)).collect()
    }

    fn preempt(&mut self, ctx: &lightmamba_serve::scheduler::AdmissionCtx<'_>) -> Vec<usize> {
        let (count, offset) = self.schedule[self.step % self.schedule.len()];
        self.step += 1;
        let n = ctx.residents.len();
        if n == 0 {
            return Vec::new();
        }
        (0..count.min(n)).map(|k| (offset + k) % n).collect()
    }

    fn name(&self) -> &'static str {
        "churn-fifo"
    }
}

fn churn_schedule() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..4, 0usize..8), 1..12)
}

/// Two chaos-wrapped backends (FP and W4A4) firing independent seeded
/// schedules — faults land on either fault domain, never on the engine.
fn chaos_registry<'m>(
    model: &'m MambaModel,
    q: &QuantizedMamba,
    fault_seed: u64,
    rate: f64,
) -> ModelRegistry<'m> {
    let mut reg = ModelRegistry::new();
    reg.register(
        "fp",
        Box::new(ChaosBackend::new(
            Box::new(FpBackend::new(model)),
            FaultPlan::seeded(fault_seed, 400, rate),
        )),
    )
    .unwrap();
    reg.register(
        "w4a4",
        Box::new(ChaosBackend::new(
            Box::new(W4A4Backend::new(q.clone())),
            FaultPlan::seeded(fault_seed ^ 0x9e37_79b9, 400, rate),
        )),
    )
    .unwrap();
    reg
}

fn terminal_sum(report: &lightmamba_serve::metrics::ServeReport) -> usize {
    report.completed + report.cancellations + report.evicted + report.failed + report.rejected
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chaos_schedules_leak_nothing_and_retire_every_request_exactly_once(
        spec in workload(),
        slots in 1usize..5,
        schedule in churn_schedule(),
        cancel_mask in proptest::collection::vec(any::<bool>(), 14),
        cancel_gap in 1u64..6,
        fault_seed in 0u64..1_000,
        rate in 0.05f64..0.5,
        threads in prop_oneof![Just(1usize), Just(4usize)],
        queue_limit_raw in 0usize..8,
    ) {
        // 0 and 1 mean "unbounded"; anything else bounds the queue.
        let queue_limit = (queue_limit_raw >= 2).then_some(queue_limit_raw);
        // The full storm at once: injected errors, panics, latency
        // spikes and restore corruption on both backends, crossed with
        // preemption churn, mid-flight cancellation, session turns, an
        // optionally bounded queue, and 1 vs 4 worker threads.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let mut requests = build_requests(&spec);
        for r in &mut requests {
            if r.id % 3 == 0 {
                r.session = Some(r.id / 3);
            }
        }
        let n = requests.len();
        let mut engine = ServeEngine::with_registry(
            chaos_registry(&model, &q, fault_seed, rate),
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: 2, threads,
..Default::default()
},
        ).unwrap();
        engine.set_resilience(ResilienceConfig {
            queue_limit,
            ..ResilienceConfig::default()
        });
        engine.submit(requests).unwrap();
        let mut policy = ChurnFifo::new(schedule);
        let mut steps = 0u64;
        let mut next_cancel = 0usize;
        while engine.has_work() && steps < 10_000 {
            if steps % cancel_gap == 0 && next_cancel < cancel_mask.len() {
                if cancel_mask[next_cancel] {
                    engine.cancel(next_cancel as u64);
                }
                next_cancel += 1;
            }
            engine.step(&mut policy).unwrap();
            steps += 1;
            // No hang and no leak at any step boundary, faults or not.
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
            prop_assert!(engine.active_count() <= slots);
            let _ = engine.take_session_snapshots();
        }
        // The engine survived the whole schedule and drained: the
        // fault horizon (400) and the deepest quarantine backoff (64)
        // are both far under the step cap.
        prop_assert!(!engine.has_work(), "chaos run must drain, not hang");
        prop_assert_eq!(engine.free_slots(), engine.capacity());
        prop_assert_eq!(engine.paused_count(), 0);
        prop_assert_eq!(engine.pending_resumes(), 0);

        // Exactly-once reporting: every submitted id retires exactly
        // once, with a terminal reason, and the report's terminal
        // counters partition the request set.
        prop_assert_eq!(engine.completions().len(), n);
        let mut ids: Vec<u64> = engine.completions().iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n, "an id retired more than once");
        for c in engine.completions() {
            match c.finish {
                FinishReason::Rejected => {
                    prop_assert!(c.tokens.is_empty(), "shed requests never ran");
                    prop_assert!(c.retry_after_steps.is_some());
                }
                FinishReason::MaxTokens | FinishReason::Eos => {
                    prop_assert!(c.retry_after_steps.is_none());
                }
                _ => {}
            }
        }
        let report = engine.report(&policy);
        prop_assert_eq!(terminal_sum(&report), n);
        if queue_limit.is_none() {
            prop_assert_eq!(report.rejected, 0, "an unbounded queue never sheds");
        }
    }

    #[test]
    fn requests_that_dodge_the_faults_are_bit_identical_to_a_fault_free_run(
        spec in workload(),
        slots in 1usize..5,
        fault_seed in 0u64..1_000,
        rate in 0.0f64..0.4,
    ) {
        // Fault injection may fail a request or delay it behind a
        // quarantine — it must never *alter* one. Every request the
        // chaotic run completes carries exactly the tokens the
        // fault-free run produces (rate 0 degenerates to full equality,
        // pinning that the armed chaos layer is transparent).
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let requests = build_requests(&spec);
        let n = requests.len();
        let run = |plan_rate: f64| {
            let mut engine = ServeEngine::with_registry(
                chaos_registry(&model, &q, fault_seed, plan_rate),
                EngineConfig { slots, max_steps: 200_000, prefill_chunk: 2, threads: 1 ,
..Default::default()
},
            ).unwrap();
            engine.set_resilience(ResilienceConfig::default());
            engine.submit(requests.clone()).unwrap();
            let report = engine.run(&mut lightmamba_serve::scheduler::Fifo).unwrap();
            let out: Vec<_> = engine.completions().to_vec();
            (report, out)
        };
        let (clean_report, clean) = run(0.0);
        prop_assert_eq!(clean_report.completed, n, "fault-free run completes everything");
        prop_assert_eq!(clean_report.backend_faults, 0);
        let reference: HashMap<u64, &Vec<u32>> =
            clean.iter().map(|c| (c.id, &c.tokens)).collect();

        let (chaos_report, chaotic) = run(rate);
        prop_assert_eq!(terminal_sum(&chaos_report), n);
        for c in &chaotic {
            if matches!(c.finish, FinishReason::MaxTokens | FinishReason::Eos) {
                prop_assert_eq!(
                    &&c.tokens,
                    reference.get(&c.id).expect("same id space"),
                    "request {} diverged under fault injection", c.id
                );
            }
        }
    }

    #[test]
    fn thread_count_never_changes_chaos_outcomes(
        spec in workload(),
        slots in 2usize..5,
        fault_seed in 0u64..1_000,
        rate in 0.05f64..0.5,
    ) {
        // The fault schedule is keyed to virtual time, not wall clock:
        // a 4-thread engine must fail, quarantine, and complete exactly
        // what the sequential one does, token for token.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let requests = build_requests(&spec);
        let run = |threads: usize| {
            let mut engine = ServeEngine::with_registry(
                chaos_registry(&model, &q, fault_seed, rate),
                EngineConfig { slots, max_steps: 200_000, prefill_chunk: 2, threads,
..Default::default()
},
            ).unwrap();
            engine.set_resilience(ResilienceConfig::default());
            engine.submit(requests.clone()).unwrap();
            let report = engine.run(&mut lightmamba_serve::scheduler::Fifo).unwrap();
            let mut done: Vec<_> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.finish, c.tokens.clone()))
                .collect();
            done.sort_by_key(|&(id, ..)| id);
            (report.failed, report.backend_faults, done)
        };
        let sequential = run(1);
        let threaded = run(4);
        prop_assert_eq!(sequential, threaded);
    }
}
