//! Pins the prefix-cache hot path: once a snapshot is harvested, a
//! cache hit — key hash, prefix verification, LRU tick bump, and the
//! state restore into an engine slot — performs **zero heap
//! allocations**. Misses on the lookup path are equally free. Only the
//! one-time harvest (snapshotting the state, inserting the entry) may
//! allocate.
//!
//! This file holds exactly one test so no parallel test can inject
//! allocations into the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use lightmamba_model::{MambaConfig, MambaModel};
use lightmamba_serve::backend::{DecodeBackend, FpBackend};
use lightmamba_serve::prefix::{hash_prefix, PrefixCache};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(l)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(p, l, n)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn prefix_cache_lookup_and_restore_allocate_nothing() {
    let model = MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(3)).unwrap();
    let backend = FpBackend::new(&model);
    let prefix: Vec<u32> = (1..=16).collect();
    let other: Vec<u32> = (100..=115).collect();

    // One-time harvest: prefill the prefix, snapshot the state, park it
    // in the cache. This side may allocate (it clones the state).
    let mut state = backend.new_state();
    backend
        .prefill_batch(&[prefix.as_slice()], std::slice::from_mut(&mut state))
        .unwrap();
    let mut cache = PrefixCache::new(4);
    cache.insert(0, &prefix, backend.save_state(&state));

    // The slot a hit restores into, pre-shaped like every pool slot.
    let mut slot = backend.new_state();

    // Warm-up: exercise the full hit and miss paths once.
    let snap = cache.lookup(0, &prefix).expect("warmed entry");
    backend.restore_state(snap, &mut slot);
    assert!(cache.lookup(0, &other).is_none());

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..64 {
        // Hashing is allocation-free on its own...
        std::hint::black_box(hash_prefix(&prefix));
        // ...and so is the full admission-path sequence: hit lookup
        // (hash + token-exact verification + LRU tick) and state
        // restore into the resident slot...
        let snap = cache.lookup(0, &prefix).expect("entry never evicted");
        backend.restore_state(snap, &mut slot);
        // ...and the miss every non-bearer request takes.
        assert!(cache.lookup(0, &other).is_none());
        assert!(!cache.contains(1, &prefix), "other models never share");
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "the prefix-cache step path allocated {} times over 64 hits + misses",
        after - before
    );
    assert_eq!(cache.hits(), 65);
    assert_eq!(cache.misses(), 65);
}
