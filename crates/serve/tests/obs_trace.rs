//! End-to-end observability checks on a churny serving run: the engine
//! drives preemption, cancellation, deadline expiry, and session
//! parking under an instrumented run, then the emitted Chrome trace
//! must parse, phase spans must nest inside their step spans, the
//! flight recorder must stay bounded, and the metrics snapshot must
//! agree with the engine's own [`ServeReport`].

use lightmamba_model::{MambaConfig, MambaModel};
use lightmamba_obs::json::{parse, JsonValue};
use lightmamba_quant::pipeline::{quantize_model, Method, QuantSpec};
use lightmamba_serve::backend::{FpBackend, W4A4Backend};
use lightmamba_serve::engine::{EngineConfig, ServeEngine};
use lightmamba_serve::metrics::ServeReport;
use lightmamba_serve::observe::{EngineObs, ObsConfig};
use lightmamba_serve::registry::ModelRegistry;
use lightmamba_serve::scheduler::policy_by_name;
use lightmamba_serve::traffic::{TrafficGenerator, TrafficScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the preemption-heavy mix under preemptive EDF with a couple of
/// mid-run cancellations and session-tagged requests, observability on.
fn churny_run(cfg: ObsConfig) -> (ServeReport, Box<EngineObs>) {
    let mut rng = StdRng::seed_from_u64(11);
    let model = MambaModel::synthetic(MambaConfig::tiny(), &mut rng).unwrap();
    let quantized = quantize_model(&model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[]).unwrap();
    let mut registry = ModelRegistry::new();
    registry
        .register("fp", Box::new(FpBackend::new(&model)))
        .unwrap();
    registry
        .register("w4a4", Box::new(W4A4Backend::new(quantized)))
        .unwrap();
    let mut engine = ServeEngine::with_registry(
        registry,
        EngineConfig {
            slots: 4,
            max_steps: 100_000,
            prefill_chunk: 4,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    engine.enable_obs(cfg);

    let mut traffic = TrafficGenerator::new(
        TrafficScenario::preemption_heavy(0.6),
        model.config().vocab_size,
        7,
    )
    .with_models(2);
    let mut requests = traffic.generate(60);
    // A few session-tagged turns so retirement parks their states.
    for req in requests.iter_mut().take(3) {
        req.session = Some(req.id);
    }
    engine.submit(requests).unwrap();

    let mut policy = policy_by_name("edf-preempt").unwrap();
    let mut cancelled = false;
    while engine.has_work() {
        if !cancelled && engine.clock() >= 6 {
            engine.cancel(1);
            engine.cancel(2);
            cancelled = true;
        }
        engine.step(policy.as_mut()).unwrap();
    }
    let report = engine.report(policy.as_ref());
    let obs = engine.take_obs().expect("obs was enabled");
    (report, obs)
}

/// Extracts `(name, ts, dur, pid)` of every complete event.
fn complete_events(trace: &JsonValue) -> Vec<(String, f64, f64, f64)> {
    trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
        .map(|e| {
            (
                e.get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string(),
                e.get("ts").and_then(JsonValue::as_f64).unwrap(),
                e.get("dur").and_then(JsonValue::as_f64).unwrap(),
                e.get("pid").and_then(JsonValue::as_f64).unwrap(),
            )
        })
        .collect()
}

#[test]
fn chrome_trace_parses_and_phase_spans_nest_within_steps() {
    let (report, obs) = churny_run(ObsConfig::default());
    assert!(report.preemptions > 0, "workload must preempt");
    assert!(report.cancellations > 0, "workload must cancel");

    let step_seconds = vec![2e-3; report.trace.steps()];
    let text = obs.chrome_trace_with_virtual(&step_seconds);
    let trace = parse(&text).expect("emitted trace is well-formed JSON");
    let events = complete_events(&trace);
    assert!(!events.is_empty());

    // Both lanes are populated: pid 1 wall spans, pid 2 virtual steps.
    assert!(events.iter().any(|e| e.3 == 1.0));
    assert!(events.iter().any(|e| e.3 == 2.0));

    // Every wall-lane phase span sits inside some step span (μs are
    // rounded to 3 decimals on write, hence the epsilon).
    let steps: Vec<&(String, f64, f64, f64)> = events
        .iter()
        .filter(|e| e.0 == "step" && e.3 == 1.0)
        .collect();
    assert!(!steps.is_empty(), "step spans on the wall lane");
    let eps = 2e-3;
    let mut phases = 0usize;
    for ev in events.iter().filter(|e| e.0 != "step" && e.3 == 1.0) {
        phases += 1;
        assert!(
            steps
                .iter()
                .any(|s| s.1 - eps <= ev.1 && ev.1 + ev.2 <= s.1 + s.2 + eps),
            "phase span {:?} at ts {} dur {} is not contained in any step span",
            ev.0,
            ev.1,
            ev.2
        );
    }
    assert!(phases > 0, "phase spans were emitted");
    // The churny run exercised the preempt and cancel phases.
    for name in ["advance", "sample", "admit", "preempt", "cancel", "retire"] {
        assert!(
            events.iter().any(|e| e.0 == name),
            "expected a {name:?} span"
        );
    }
}

#[test]
fn flight_recorder_stays_bounded_and_metrics_match_the_report() {
    let cfg = ObsConfig {
        step_records: 16,
        lifecycle_events: 64,
        ..ObsConfig::default()
    };
    let (report, obs) = churny_run(cfg);

    // The ring held its bound and evicted exactly the overflow.
    assert_eq!(obs.flight.steps().capacity(), 16);
    assert!(obs.flight.steps().len() <= 16);
    let total = report.trace.steps() as u64;
    assert!(total > 16, "run long enough to wrap the ring");
    assert_eq!(obs.flight.steps().evicted(), total - 16);
    assert!(obs.flight.lifecycle().len() <= 64);

    // Retained step records are the newest ones, in step order.
    let recorded: Vec<u64> = obs.flight.steps().iter().map(|r| r.step).collect();
    let mut sorted = recorded.clone();
    sorted.sort_unstable();
    assert_eq!(recorded, sorted, "step records drain oldest-first");

    // The metrics snapshot agrees with the engine's own report.
    let text = obs.exposition();
    for (name, value) in [
        ("engine_steps_total", total),
        ("engine_completions_total", report.completed as u64),
        ("engine_cancellations_total", report.cancellations as u64),
        ("engine_expiries_total", report.evicted as u64),
        ("engine_preemptions_total", report.preemptions),
        ("engine_resumes_total", report.resumes),
        ("engine_prefill_tokens_total", report.prefill_tokens),
        ("engine_decode_tokens_total", report.generated_tokens),
    ] {
        assert!(
            text.contains(&format!("{name} {value}")),
            "{name} should read {value}:\n{text}"
        );
    }
    // The flight dump is renderable and names its own bounds.
    let dump = obs.flight_dump();
    assert!(dump.contains("16 steps retained"), "{dump}");
}
