//! Regression pins for the prefix cache and token budget living
//! alongside the session store: both LRU bounds stay exact under
//! engine traffic, and no state — slot, paused snapshot, pending
//! resume, cached prefix, or parked session — leaks across a drain.

use lightmamba_model::{MambaConfig, MambaModel};
use lightmamba_serve::engine::{EngineConfig, ServeEngine};
use lightmamba_serve::frontend::SessionStore;
use lightmamba_serve::request::GenRequest;
use lightmamba_serve::scheduler::{Fifo, TokenBudget};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_model() -> MambaModel {
    MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(9)).unwrap()
}

/// A request whose prompt is `prefix ++ [id-specific tail]`, marked for
/// prefix caching.
fn bearer(id: u64, prefix_tag: u32, k: usize, gen: usize) -> GenRequest {
    let mut prompt = vec![prefix_tag; k];
    prompt.extend_from_slice(&[(id % 50) as u32 + 1, (id % 7) as u32 + 60]);
    GenRequest::greedy(id, prompt, gen).with_shared_prefix(k)
}

#[test]
fn prefix_cache_lru_bound_is_exact_under_eviction_pressure() {
    let model = tiny_model();
    let mut engine = ServeEngine::new(
        &model,
        EngineConfig {
            slots: 2,
            max_steps: 100_000,
            prefill_chunk: 2,
            threads: 1,
            prefix_cache: Some(2),
            ..Default::default()
        },
    )
    .unwrap();

    // Five distinct prefixes through a 2-entry cache: every harvest
    // lands, evicting the oldest; the bound never stretches.
    let distinct = 5u64;
    engine
        .submit(
            (0..distinct)
                .map(|id| bearer(id, 200 + id as u32, 6, 3))
                .collect(),
        )
        .unwrap();
    let mut policy = Fifo;
    engine.run(&mut policy).unwrap();
    {
        let cache = engine.prefix_cache().unwrap();
        assert_eq!(cache.misses(), distinct, "each first bearer misses");
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 2, "the LRU bound is exact, not approximate");
        assert_eq!(cache.capacity(), 2);
        assert_eq!(
            cache.evictions(),
            distinct - 2,
            "every harvest past capacity evicted exactly one entry"
        );
    }

    // A second wave over the two *surviving* prefixes hits without
    // inserting; a wave over an evicted one misses and re-harvests.
    let survivors: Vec<GenRequest> = (0..2u64)
        .map(|i| {
            let mut r = bearer(10 + i, 200 + (distinct - 2 + i) as u32, 6, 3);
            r.arrival_step = engine.clock();
            r
        })
        .collect();
    engine.submit(survivors).unwrap();
    engine.run(&mut policy).unwrap();
    let cache = engine.prefix_cache().unwrap();
    assert_eq!(cache.hits(), 2, "surviving entries serve later bearers");
    assert_eq!(cache.misses(), distinct);
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.evictions(), distinct - 2, "hits never evict");
}

#[test]
fn prefix_cache_sessions_and_budget_interact_without_leaking_state() {
    let model = tiny_model();
    let mut engine = ServeEngine::new(
        &model,
        EngineConfig {
            slots: 3,
            max_steps: 100_000,
            prefill_chunk: 2,
            threads: 1,
            prefix_cache: Some(2),
            token_budget: Some(TokenBudget::new(8, 40).unwrap()),
        },
    )
    .unwrap();

    // Turn 1: five session-tagged bearers of three distinct prefixes,
    // throttled by the budget, harvesting through the 2-entry cache.
    let turn1: Vec<GenRequest> = (0..5u64)
        .map(|id| bearer(id, 240 + (id % 3) as u32, 5, 4).with_session(id))
        .collect();
    engine.submit(turn1).unwrap();
    let mut policy = Fifo;
    let report = engine.run(&mut policy).unwrap();
    assert_eq!(report.completed, 5);

    // Park every finished turn in a 2-session store: its LRU bound is
    // exact under the same pressure.
    let mut store = SessionStore::new(2);
    let snaps = engine.take_session_snapshots();
    assert_eq!(snaps.len(), 5, "every session turn parked a snapshot");
    for (sid, snap) in snaps {
        store.insert(sid, snap);
        assert!(store.len() <= store.capacity());
    }
    assert_eq!(store.len(), 2, "the session LRU bound is exact");
    assert_eq!(store.evictions(), 3);

    // Turn 2: resume the two surviving sessions. The resume path must
    // take precedence over the prefix cache (the parked state already
    // contains the whole history), so the cache counters stay put.
    let cache_before = {
        let c = engine.prefix_cache().unwrap();
        (c.hits(), c.misses(), c.len())
    };
    for (i, sid) in [3u64, 4u64].into_iter().enumerate() {
        let snap = store.take(sid).expect("survivor parked");
        let mut r = GenRequest::greedy(100 + i as u64, vec![9, 8, 7], 3).with_session(sid);
        r.arrival_step = engine.clock();
        engine.submit_with_state(r, snap).unwrap();
    }
    engine.run(&mut policy).unwrap();
    assert_eq!(store.len(), 0, "take() releases the store's copy");
    {
        let c = engine.prefix_cache().unwrap();
        assert_eq!(
            (c.hits(), c.misses(), c.len()),
            cache_before,
            "session resumes never touch the prefix cache"
        );
    }

    // Nothing leaked anywhere: slots all free, no paused sequences, no
    // pending resume states, every request retired exactly once.
    assert!(!engine.has_work());
    assert_eq!(engine.free_slots(), engine.capacity());
    assert_eq!(engine.paused_count(), 0);
    assert_eq!(engine.pending_resumes(), 0);
    assert_eq!(engine.completions().len(), 7);
    let final_report = engine.report(&policy);
    assert_eq!(final_report.completed, 7);
    assert!(
        final_report.budget_deferrals > 0 || !final_report.trace.prefill_per_step.is_empty()
    );
}
