//! Property-based invariants of the serving subsystem: FIFO liveness,
//! slot conservation (single- and multi-model), and batched/sequential
//! equivalence for both the FP and the W4A4 quantized backends.

use lightmamba_model::eval::StepModel;
use lightmamba_model::{MambaConfig, MambaModel};
use lightmamba_quant::pipeline::{quantize_model, Method, QuantSpec};
use lightmamba_quant::QuantizedMamba;
use lightmamba_serve::backend::{DecodeBackend, FpBackend, W4A4Backend};
use lightmamba_serve::engine::{EngineConfig, ServeEngine};
use lightmamba_serve::registry::ModelRegistry;
use lightmamba_serve::request::GenRequest;
use lightmamba_serve::scheduler::{ContinuousBatching, Scheduler, StaticBatching};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_model() -> MambaModel {
    MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(9)).unwrap()
}

fn tiny_w4a4(model: &MambaModel) -> QuantizedMamba {
    quantize_model(model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[]).unwrap()
}

/// Random request workloads: (arrival gap, prompt len, gen len, seed).
fn workload() -> impl Strategy<Value = Vec<(u64, Vec<u32>, usize, u64)>> {
    proptest::collection::vec(
        (
            0u64..4,
            proptest::collection::vec(0u32..256, 1..6),
            1usize..6,
            0u64..1_000_000,
        ),
        1..14,
    )
}

fn build_requests(spec: &[(u64, Vec<u32>, usize, u64)]) -> Vec<GenRequest> {
    let mut arrival = 0u64;
    spec.iter()
        .enumerate()
        .map(|(id, (gap, prompt, gen_len, seed))| {
            arrival += gap;
            let mut r = GenRequest::greedy(id as u64, prompt.clone(), *gen_len);
            r.arrival_step = arrival;
            r.seed = *seed;
            r
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_request_starves_under_fifo(spec in workload(), slots in 1usize..5) {
        let model = tiny_model();
        let requests = build_requests(&spec);
        let n = requests.len();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig { slots, max_steps: 200_000 },
        ).unwrap();
        engine.submit(requests).unwrap();
        let report = engine.run(&mut ContinuousBatching).unwrap();

        // Liveness: every submitted request completes.
        prop_assert_eq!(report.completed, n);
        prop_assert_eq!(report.evicted, 0);
        prop_assert!(!engine.has_work());

        // FIFO: requests are admitted in id order (ids are arrival-sorted).
        let mut admissions: Vec<(u64, u64)> = engine
            .completions()
            .iter()
            .map(|c| (c.admitted_step.expect("completed implies admitted"), c.id))
            .collect();
        admissions.sort();
        let ids: Vec<u64> = admissions.iter().map(|&(_, id)| id).collect();
        let mut sorted_ids = ids.clone();
        sorted_ids.sort();
        prop_assert_eq!(ids, sorted_ids);
    }

    #[test]
    fn slots_are_conserved_across_join_and_evict(spec in workload(), slots in 1usize..5) {
        let model = tiny_model();
        let requests = build_requests(&spec);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig { slots, max_steps: 200_000 },
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut sched = ContinuousBatching;
        let mut steps = 0u64;
        while engine.has_work() && steps < 200_000 {
            engine.step(&mut sched).unwrap();
            steps += 1;
            // Conservation at every step boundary, while sequences join
            // and leave mid-flight.
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
            prop_assert!(engine.active_count() <= slots);
        }
        // Drained: every slot is back in the pool.
        prop_assert_eq!(engine.free_slots(), engine.capacity());
    }

    #[test]
    fn batched_step_matches_sequential_bit_for_bit(
        prompts in proptest::collection::vec(
            proptest::collection::vec(0u32..256, 1..8),
            1..6,
        ),
        gen_len in 1usize..6,
    ) {
        let model = tiny_model();

        // Sequential single-stream reference.
        let mut expected = Vec::new();
        for p in &prompts {
            let mut state = model.new_state();
            let mut logits = model.prefill(p, &mut state).unwrap();
            let mut toks = Vec::new();
            for _ in 0..gen_len {
                let t = MambaModel::argmax(&logits) as u32;
                toks.push(t);
                logits = model.forward_step(t, &mut state).unwrap();
            }
            expected.push(toks);
        }

        // Batched decode of all sequences together.
        let mut states: Vec<_> = prompts.iter().map(|_| model.new_state()).collect();
        let slices: Vec<&[u32]> = prompts.iter().map(|p| p.as_slice()).collect();
        let mut logits = model.prefill_batch(&slices, &mut states).unwrap();
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); prompts.len()];
        for _ in 0..gen_len {
            let tokens: Vec<u32> = logits
                .iter()
                .map(|l| MambaModel::argmax(l) as u32)
                .collect();
            for (k, &t) in tokens.iter().enumerate() {
                got[k].push(t);
            }
            logits = model.forward_step_batch(&tokens, &mut states).unwrap();
        }

        prop_assert_eq!(got, expected);
    }

    #[test]
    fn w4a4_batched_decode_matches_sequential_bit_for_bit(
        prompts in proptest::collection::vec(
            proptest::collection::vec(0u32..256, 1..8),
            1..5,
        ),
        gen_len in 1usize..5,
    ) {
        let model = tiny_model();
        let mut q = tiny_w4a4(&model);
        let backend = W4A4Backend::new(q.clone());

        // Sequential reference: QuantizedMamba's own StepModel decode.
        let mut expected = Vec::new();
        for p in &prompts {
            q.reset();
            let mut logits = Vec::new();
            for &t in p {
                logits = q.step(t).unwrap();
            }
            let mut toks = Vec::new();
            for _ in 0..gen_len {
                let t = MambaModel::argmax(&logits) as u32;
                toks.push(t);
                logits = q.step(t).unwrap();
            }
            expected.push(toks);
        }

        // Batched decode through the backend trait over external states.
        let mut states: Vec<_> = prompts.iter().map(|_| backend.new_state()).collect();
        let slices: Vec<&[u32]> = prompts.iter().map(|p| p.as_slice()).collect();
        let mut logits = backend.prefill_batch(&slices, &mut states).unwrap();
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); prompts.len()];
        for _ in 0..gen_len {
            let items: Vec<(usize, u32)> = logits
                .iter()
                .enumerate()
                .map(|(k, l)| (k, MambaModel::argmax(l) as u32))
                .collect();
            for &(k, t) in &items {
                got[k].push(t);
            }
            logits = backend
                .forward_step_batch_indexed(&items, &mut states)
                .unwrap()
                .into_iter()
                .map(|(_, l)| l)
                .collect();
        }

        prop_assert_eq!(got, expected);
    }

    #[test]
    fn slots_are_conserved_when_two_models_multiplex(
        spec in workload(),
        slots in 1usize..5,
    ) {
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(q))).unwrap();

        let mut requests = build_requests(&spec);
        for r in &mut requests {
            r.model = (r.id % 2) as usize; // interleave the two backends
        }
        let n = requests.len();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots, max_steps: 200_000 },
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut sched = ContinuousBatching;
        let mut steps = 0u64;
        while engine.has_work() && steps < 200_000 {
            engine.step(&mut sched).unwrap();
            steps += 1;
            // Conservation at every step boundary while two models'
            // sequences join and leave one shared pool.
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
            prop_assert!(engine.active_count() <= slots);
        }
        prop_assert_eq!(engine.free_slots(), engine.capacity());
        let report = engine.report(&sched);
        prop_assert_eq!(report.completed, n);
        // Per-model accounting covers every request exactly once.
        prop_assert_eq!(
            report.per_model.iter().map(|m| m.completed).sum::<usize>(),
            n
        );
        // Sub-batch traces partition each step's batch.
        for (sub, &total) in report
            .trace
            .sub_batches_per_step
            .iter()
            .zip(&report.trace.batch_per_step)
        {
            prop_assert_eq!(sub.len(), 2);
            prop_assert_eq!(sub.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn scheduler_choice_never_changes_outputs(spec in workload(), slots in 1usize..5) {
        let model = tiny_model();
        let requests = build_requests(&spec);
        let run = |sched: &mut dyn Scheduler| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig { slots, max_steps: 200_000 },
            ).unwrap();
            engine.submit(requests.clone()).unwrap();
            engine.run(sched).unwrap();
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(run(&mut ContinuousBatching), run(&mut StaticBatching));
    }
}
