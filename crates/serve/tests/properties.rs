//! Property-based invariants of the serving subsystem: FIFO liveness,
//! slot conservation (single- and multi-model, with and without
//! preemption churn), batched/sequential equivalence for both the FP
//! and the W4A4 quantized backends, pause/resume bit-identity under
//! arbitrary preemption schedules, EDF deadline dominance over FIFO,
//! preemptive-EDF dominance over plain EDF on the preemption-heavy
//! scenario, WFQ slot-share convergence, session-resume bit-identity
//! with full-history re-prefill on both backends, and slot/state
//! conservation under arbitrary interleavings of cancellation,
//! preemption churn, and session resume.

use lightmamba_model::eval::StepModel;
use lightmamba_model::{MambaConfig, MambaModel};
use lightmamba_quant::pipeline::{quantize_model, Method, QuantSpec};
use lightmamba_quant::QuantizedMamba;
use lightmamba_serve::backend::{DecodeBackend, FpBackend, W4A4Backend};
use lightmamba_serve::engine::{EngineConfig, ServeEngine};
use lightmamba_serve::frontend::SessionStore;
use lightmamba_serve::registry::ModelRegistry;
use lightmamba_serve::request::GenRequest;
use lightmamba_serve::scheduler::{
    Edf, Fifo, Policy, PriorityClasses, StaticBatching, WeightedFair,
};
use lightmamba_serve::traffic::{TrafficGenerator, TrafficScenario};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_model() -> MambaModel {
    MambaModel::synthetic(MambaConfig::tiny(), &mut StdRng::seed_from_u64(9)).unwrap()
}

fn tiny_w4a4(model: &MambaModel) -> QuantizedMamba {
    quantize_model(model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[]).unwrap()
}

/// Random request workloads: (arrival gap, prompt len, gen len, seed).
fn workload() -> impl Strategy<Value = Vec<(u64, Vec<u32>, usize, u64)>> {
    proptest::collection::vec(
        (
            0u64..4,
            proptest::collection::vec(0u32..256, 1..6),
            1usize..6,
            0u64..1_000_000,
        ),
        1..14,
    )
}

fn build_requests(spec: &[(u64, Vec<u32>, usize, u64)]) -> Vec<GenRequest> {
    let mut arrival = 0u64;
    spec.iter()
        .enumerate()
        .map(|(id, (gap, prompt, gen_len, seed))| {
            arrival += gap;
            let mut r = GenRequest::greedy(id as u64, prompt.clone(), *gen_len);
            r.arrival_step = arrival;
            r.seed = *seed;
            r
        })
        .collect()
}

/// FIFO admission plus an arbitrary preemption schedule: each step
/// pauses `count` residents starting at a rotating `offset` (both taken
/// from the proptest-generated schedule, cycled). Used to pin that *no*
/// pause/resume interleaving can change outputs or leak slots.
struct ChurnFifo {
    schedule: Vec<(usize, usize)>,
    step: usize,
}

impl ChurnFifo {
    fn new(schedule: Vec<(usize, usize)>) -> Self {
        ChurnFifo {
            schedule: if schedule.is_empty() {
                vec![(0, 0)]
            } else {
                schedule
            },
            step: 0,
        }
    }
}

impl Policy for ChurnFifo {
    fn select(&mut self, ctx: &lightmamba_serve::scheduler::AdmissionCtx<'_>) -> Vec<usize> {
        (0..ctx.n_candidates().min(ctx.free_slots)).collect()
    }

    fn preempt(&mut self, ctx: &lightmamba_serve::scheduler::AdmissionCtx<'_>) -> Vec<usize> {
        let (count, offset) = self.schedule[self.step % self.schedule.len()];
        self.step += 1;
        let n = ctx.residents.len();
        if n == 0 {
            return Vec::new();
        }
        (0..count.min(n)).map(|k| (offset + k) % n).collect()
    }

    fn name(&self) -> &'static str {
        "churn-fifo"
    }
}

/// Arbitrary preemption schedules: up to 3 victims per step at a
/// rotating offset, with calm and stormy steps interleaved.
fn churn_schedule() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..4, 0usize..8), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_request_starves_under_fifo(spec in workload(), slots in 1usize..5) {
        let model = tiny_model();
        let requests = build_requests(&spec);
        let n = requests.len();
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let report = engine.run(&mut Fifo).unwrap();

        // Liveness: every submitted request completes.
        prop_assert_eq!(report.completed, n);
        prop_assert_eq!(report.evicted, 0);
        prop_assert!(!engine.has_work());

        // FIFO: requests are admitted in id order (ids are arrival-sorted).
        let mut admissions: Vec<(u64, u64)> = engine
            .completions()
            .iter()
            .map(|c| (c.admitted_step.expect("completed implies admitted"), c.id))
            .collect();
        admissions.sort();
        let ids: Vec<u64> = admissions.iter().map(|&(_, id)| id).collect();
        let mut sorted_ids = ids.clone();
        sorted_ids.sort();
        prop_assert_eq!(ids, sorted_ids);
    }

    #[test]
    fn slots_are_conserved_across_join_and_evict(spec in workload(), slots in 1usize..5) {
        let model = tiny_model();
        let requests = build_requests(&spec);
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut sched = Fifo;
        let mut steps = 0u64;
        while engine.has_work() && steps < 200_000 {
            engine.step(&mut sched).unwrap();
            steps += 1;
            // Conservation at every step boundary, while sequences join
            // and leave mid-flight.
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
            prop_assert!(engine.active_count() <= slots);
        }
        // Drained: every slot is back in the pool.
        prop_assert_eq!(engine.free_slots(), engine.capacity());
    }

    #[test]
    fn batched_step_matches_sequential_bit_for_bit(
        prompts in proptest::collection::vec(
            proptest::collection::vec(0u32..256, 1..8),
            1..6,
        ),
        gen_len in 1usize..6,
    ) {
        let model = tiny_model();

        // Sequential single-stream reference.
        let mut expected = Vec::new();
        for p in &prompts {
            let mut state = model.new_state();
            let mut logits = model.prefill(p, &mut state).unwrap();
            let mut toks = Vec::new();
            for _ in 0..gen_len {
                let t = MambaModel::argmax(&logits) as u32;
                toks.push(t);
                logits = model.forward_step(t, &mut state).unwrap();
            }
            expected.push(toks);
        }

        // Batched decode of all sequences together.
        let mut states: Vec<_> = prompts.iter().map(|_| model.new_state()).collect();
        let slices: Vec<&[u32]> = prompts.iter().map(|p| p.as_slice()).collect();
        let mut logits = model.prefill_batch(&slices, &mut states).unwrap();
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); prompts.len()];
        for _ in 0..gen_len {
            let tokens: Vec<u32> = logits
                .iter()
                .map(|l| MambaModel::argmax(l) as u32)
                .collect();
            for (k, &t) in tokens.iter().enumerate() {
                got[k].push(t);
            }
            logits = model.forward_step_batch(&tokens, &mut states).unwrap();
        }

        prop_assert_eq!(got, expected);
    }

    #[test]
    fn w4a4_batched_decode_matches_sequential_bit_for_bit(
        prompts in proptest::collection::vec(
            proptest::collection::vec(0u32..256, 1..8),
            1..5,
        ),
        gen_len in 1usize..5,
    ) {
        let model = tiny_model();
        let mut q = tiny_w4a4(&model);
        let backend = W4A4Backend::new(q.clone());

        // Sequential reference: QuantizedMamba's own StepModel decode.
        let mut expected = Vec::new();
        for p in &prompts {
            q.reset();
            let mut logits = Vec::new();
            for &t in p {
                logits = q.step(t).unwrap();
            }
            let mut toks = Vec::new();
            for _ in 0..gen_len {
                let t = MambaModel::argmax(&logits) as u32;
                toks.push(t);
                logits = q.step(t).unwrap();
            }
            expected.push(toks);
        }

        // Batched decode through the backend trait over external states.
        let mut states: Vec<_> = prompts.iter().map(|_| backend.new_state()).collect();
        let slices: Vec<&[u32]> = prompts.iter().map(|p| p.as_slice()).collect();
        let mut logits = backend.prefill_batch(&slices, &mut states).unwrap();
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); prompts.len()];
        for _ in 0..gen_len {
            let items: Vec<(usize, u32)> = logits
                .iter()
                .enumerate()
                .map(|(k, l)| (k, MambaModel::argmax(l) as u32))
                .collect();
            for &(k, t) in &items {
                got[k].push(t);
            }
            logits = backend
                .forward_step_batch_indexed(&items, &mut states)
                .unwrap()
                .into_iter()
                .map(|(_, l)| l)
                .collect();
        }

        prop_assert_eq!(got, expected);
    }

    #[test]
    fn slots_are_conserved_when_two_models_multiplex(
        spec in workload(),
        slots in 1usize..5,
    ) {
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(q))).unwrap();

        let mut requests = build_requests(&spec);
        for r in &mut requests {
            r.model = (r.id % 2) as usize; // interleave the two backends
        }
        let n = requests.len();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut sched = Fifo;
        let mut steps = 0u64;
        while engine.has_work() && steps < 200_000 {
            engine.step(&mut sched).unwrap();
            steps += 1;
            // Conservation at every step boundary while two models'
            // sequences join and leave one shared pool.
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
            prop_assert!(engine.active_count() <= slots);
        }
        prop_assert_eq!(engine.free_slots(), engine.capacity());
        let report = engine.report(&sched);
        prop_assert_eq!(report.completed, n);
        // Per-model accounting covers every request exactly once.
        prop_assert_eq!(
            report.per_model.iter().map(|m| m.completed).sum::<usize>(),
            n
        );
        // Sub-batch traces partition each step's batch.
        for (sub, &total) in report
            .trace
            .sub_batches_per_step
            .iter()
            .zip(&report.trace.batch_per_step)
        {
            prop_assert_eq!(sub.len(), 2);
            prop_assert_eq!(sub.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn policy_choice_never_changes_outputs(spec in workload(), slots in 1usize..5) {
        let model = tiny_model();
        let requests = build_requests(&spec);
        let run = |sched: &mut dyn Policy| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig { slots, max_steps: 200_000, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
            ).unwrap();
            engine.submit(requests.clone()).unwrap();
            engine.run(sched).unwrap();
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            out
        };
        let fifo = run(&mut Fifo);
        prop_assert_eq!(&fifo, &run(&mut StaticBatching));
        prop_assert_eq!(&fifo, &run(&mut Edf::default()));
        prop_assert_eq!(&fifo, &run(&mut PriorityClasses::default()));
        prop_assert_eq!(&fifo, &run(&mut WeightedFair::equal()));
    }

    #[test]
    fn chunked_prefill_never_changes_outputs(spec in workload(), slots in 1usize..5) {
        // The pinned invariant under the chunked-prefill rework:
        // per-request outputs are bit-identical for every chunk size.
        let model = tiny_model();
        let requests = build_requests(&spec);
        let run = |chunk: usize| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig { slots, max_steps: 200_000, prefill_chunk: chunk, threads: 1 ,
..Default::default()
},
            ).unwrap();
            engine.submit(requests.clone()).unwrap();
            engine.run(&mut Fifo).unwrap();
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            out
        };
        let flat = run(1);
        prop_assert_eq!(&flat, &run(3));
        prop_assert_eq!(&flat, &run(16));
    }

    #[test]
    fn edf_never_completes_fewer_within_deadline_than_fifo(
        spec in proptest::collection::vec((0u64..3, 0u64..60), 1..16),
        slots in 1usize..4,
        chunk in 1usize..4,
    ) {
        // Equal-length jobs (same prompt and generation length for
        // every request): admitting the feasible earliest-deadline
        // request first is then an exchange-argument optimum, so EDF
        // (with pre-admission doomed eviction) can never hit fewer
        // deadlines than arrival-order admission on the same trace.
        // Deadlines under 8 steps encode "no deadline".
        let model = tiny_model();
        let mut arrival = 0u64;
        let requests: Vec<GenRequest> = spec
            .iter()
            .enumerate()
            .map(|(id, &(gap, deadline))| {
                arrival += gap;
                let mut r = GenRequest::greedy(id as u64, vec![(id % 100) as u32 + 1; 3], 4);
                r.arrival_step = arrival;
                r.deadline_steps = (deadline >= 8).then_some(deadline);
                r
            })
            .collect();
        let run = |policy: &mut dyn Policy| {
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig { slots, max_steps: 50_000, prefill_chunk: chunk, threads: 1 ,
..Default::default()
},
            ).unwrap();
            engine.submit(requests.clone()).unwrap();
            engine.run(policy).unwrap()
        };
        let fifo = run(&mut Fifo);
        let edf = run(&mut Edf::default());
        prop_assert_eq!(edf.deadline_total, fifo.deadline_total);
        prop_assert!(
            edf.deadline_hits >= fifo.deadline_hits,
            "edf hit {}/{} but fifo hit {}/{}",
            edf.deadline_hits,
            edf.deadline_total,
            fifo.deadline_hits,
            fifo.deadline_total
        );
    }

    #[test]
    fn wfq_slot_shares_converge_to_weights(weight in 1usize..5) {
        // Two identically-shaped models saturate one pool far beyond
        // the step budget; long-run processed-token shares must land on
        // weight / (weight + 1) — the WFQ contract.
        let model = tiny_model();
        let mut reg = ModelRegistry::new();
        reg.register("a", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("b", Box::new(FpBackend::new(&model))).unwrap();
        let requests: Vec<GenRequest> = (0..600u64)
            .map(|id| GenRequest::greedy(id, vec![3; 2], 6).on_model((id % 2) as usize))
            .collect();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots: 6, max_steps: 400, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut wfq = WeightedFair::new(vec![weight as f64, 1.0]);
        let report = engine.run(&mut wfq).unwrap();
        prop_assert!(engine.has_work(), "pool must stay saturated for shares to mean anything");
        let a = report.per_model[0].processed_tokens as f64;
        let b = report.per_model[1].processed_tokens as f64;
        let share = a / (a + b);
        let want = weight as f64 / (weight as f64 + 1.0);
        prop_assert!(
            (share - want).abs() < 0.1,
            "weight {} model took {:.3} of the pool, want {:.3}",
            weight,
            share,
            want
        );
    }

    #[test]
    fn pause_resume_never_changes_outputs_on_either_backend(
        spec in workload(),
        slots in 1usize..5,
        schedule in churn_schedule(),
        chunk in 1usize..4,
    ) {
        // The tentpole pin: under an *arbitrary* preemption schedule —
        // any victims, any step, including pause-then-resume within one
        // step — every request's tokens equal its model's uninterrupted
        // sequential decode, for the FP and the W4A4 backend alike.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(q.clone()))).unwrap();
        let mut requests = build_requests(&spec);
        for r in &mut requests {
            r.model = (r.id % 2) as usize;
        }
        let n = requests.len();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: chunk, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests.clone()).unwrap();
        let report = engine.run(&mut ChurnFifo::new(schedule)).unwrap();
        prop_assert_eq!(report.completed, n);

        let mut q_seq = q.clone();
        for req in &requests {
            let done = engine
                .completions()
                .iter()
                .find(|c| c.id == req.id)
                .expect("every request completes");
            let mut rng = StdRng::seed_from_u64(req.seed);
            let expect = if req.model == 0 {
                let mut state = model.new_state();
                let mut logits = model.prefill(&req.prompt, &mut state).unwrap();
                let mut toks = Vec::new();
                for _ in 0..req.max_new_tokens {
                    let t = req.sampler.sample(&logits, &mut rng);
                    toks.push(t);
                    logits = model.forward_step(t, &mut state).unwrap();
                }
                toks
            } else {
                q_seq.reset();
                let mut logits = Vec::new();
                for &t in &req.prompt {
                    logits = q_seq.step(t).unwrap();
                }
                let mut toks = Vec::new();
                for _ in 0..req.max_new_tokens {
                    let t = req.sampler.sample(&logits, &mut rng);
                    toks.push(t);
                    logits = q_seq.step(t).unwrap();
                }
                toks
            };
            prop_assert_eq!(
                &done.tokens,
                &expect,
                "request {} (model {}) diverged under preemption churn",
                req.id,
                req.model
            );
        }
    }

    #[test]
    fn slots_are_conserved_under_arbitrary_pause_resume_interleavings(
        spec in workload(),
        slots in 1usize..5,
        schedule in churn_schedule(),
    ) {
        // No slot leaked, no sequence lost, every request accounted for
        // exactly once — while sequences bounce between resident and
        // paused at the schedule's whim, across two multiplexed models.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(q))).unwrap();
        let mut requests = build_requests(&spec);
        for r in &mut requests {
            r.model = (r.id % 2) as usize;
        }
        let n = requests.len();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut policy = ChurnFifo::new(schedule);
        let mut steps = 0u64;
        while engine.has_work() && steps < 200_000 {
            engine.step(&mut policy).unwrap();
            steps += 1;
            // Paused sequences hold no slot: residency alone must
            // account for the pool at every step boundary.
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
            prop_assert!(engine.active_count() <= slots);
            // No sequence lost: everything is exactly one of finished,
            // resident, paused, or not-yet-admitted.
            prop_assert!(
                engine.completions().len() + engine.active_count() + engine.paused_count() <= n
            );
        }
        prop_assert_eq!(engine.free_slots(), engine.capacity());
        prop_assert_eq!(engine.paused_count(), 0);
        let report = engine.report(&policy);
        prop_assert_eq!(report.completed, n);
        // Pause/resume bookkeeping balances once the engine drains.
        prop_assert_eq!(report.preemptions, report.resumes);
        let moves: usize = report.trace.state_moves_per_step.iter().sum();
        prop_assert_eq!(moves as u64, report.preemptions + report.resumes);
        for (sub, &total) in report
            .trace
            .sub_state_moves_per_step
            .iter()
            .zip(&report.trace.state_moves_per_step)
        {
            prop_assert_eq!(sub.iter().sum::<usize>(), total);
        }
        // Per-model accounting still covers every request exactly once.
        prop_assert_eq!(
            report.per_model.iter().map(|m| m.completed).sum::<usize>(),
            n
        );
    }

    #[test]
    fn session_resume_is_bit_identical_to_full_history_reprefill(
        p1 in proptest::collection::vec(0u32..256, 1..8),
        gen1 in 1usize..6,
        p2 in proptest::collection::vec(0u32..256, 1..6),
        gen2 in 1usize..6,
        chunk in 1usize..4,
    ) {
        // The tentpole pin: for an arbitrary two-turn chat, decoding
        // turn 2 from the parked session state (pending token prepended)
        // equals decoding it from a cold engine that re-prefills the
        // entire history — bit for bit, for the FP and the W4A4
        // backend, at every prefill chunking.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        for quantized in [false, true] {
            let make_reg = || {
                let mut reg = ModelRegistry::new();
                if quantized {
                    reg.register("w4a4", Box::new(W4A4Backend::new(q.clone()))).unwrap();
                } else {
                    reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
                }
                reg
            };
            let cfg = EngineConfig { slots: 1, max_steps: 200_000, prefill_chunk: chunk, threads: 1 ,
..Default::default()
};

            // Turn 1 parks its state; turn 2 resumes it.
            let mut engine = ServeEngine::with_registry(make_reg(), cfg).unwrap();
            engine
                .submit(vec![GenRequest::greedy(0, p1.clone(), gen1).with_session(1)])
                .unwrap();
            engine.run(&mut Fifo).unwrap();
            let turn1_tokens = engine.completions()[0].tokens.clone();
            let (_, snap) = engine
                .take_session_snapshots()
                .pop()
                .expect("finished session turn parks a snapshot");
            prop_assert_eq!(snap.consumed_tokens, p1.len() + gen1 - 1);
            let mut turn2 = GenRequest::greedy(1, p2.clone(), gen2).with_session(1);
            turn2.arrival_step = engine.clock();
            engine.submit_with_state(turn2, snap).unwrap();
            engine.run(&mut Fifo).unwrap();
            let resumed = engine
                .completions()
                .iter()
                .find(|c| c.id == 1)
                .expect("turn 2 completes")
                .tokens
                .clone();
            prop_assert_eq!(engine.pending_resumes(), 0);

            // Cold reference: one request whose prompt is the whole
            // conversation so far.
            let mut full = p1.clone();
            full.extend_from_slice(&turn1_tokens);
            full.extend_from_slice(&p2);
            let mut reference = ServeEngine::with_registry(make_reg(), cfg).unwrap();
            reference.submit(vec![GenRequest::greedy(1, full, gen2)]).unwrap();
            reference.run(&mut Fifo).unwrap();
            prop_assert_eq!(
                &resumed,
                &reference.completions()[0].tokens,
                "resumed turn diverged from re-prefill (quantized: {})",
                quantized
            );
        }
    }

    #[test]
    fn cancellation_churn_and_sessions_conserve_slots_and_leak_no_state(
        spec in workload(),
        slots in 1usize..5,
        schedule in churn_schedule(),
        cancel_mask in proptest::collection::vec(any::<bool>(), 14),
        cancel_gap in 1u64..6,
    ) {
        // Arbitrary interleavings of client cancellation, preemption
        // churn, and session retirement/resume: slots are conserved at
        // every step boundary, every request retires exactly once, no
        // paused or resume state survives the drain, and the session
        // store never exceeds its LRU capacity.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(q))).unwrap();
        let mut requests = build_requests(&spec);
        for r in &mut requests {
            r.model = (r.id % 2) as usize;
            if r.id % 3 == 0 {
                r.session = Some(r.id / 3);
            }
        }
        let n = requests.len();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut policy = ChurnFifo::new(schedule);
        let mut store = SessionStore::new(2);
        let mut seen_sessions = Vec::new();
        let mut steps = 0u64;
        let mut next_cancel = 0usize;
        while engine.has_work() && steps < 200_000 {
            if steps % cancel_gap == 0 && next_cancel < cancel_mask.len() {
                if cancel_mask[next_cancel] {
                    engine.cancel(next_cancel as u64);
                }
                next_cancel += 1;
            }
            engine.step(&mut policy).unwrap();
            steps += 1;
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
            prop_assert!(engine.active_count() <= slots);
            for (sid, snap) in engine.take_session_snapshots() {
                if !seen_sessions.contains(&sid) {
                    seen_sessions.push(sid);
                }
                store.insert(sid, snap);
            }
            prop_assert!(store.len() <= store.capacity(), "LRU bound violated");
        }
        prop_assert_eq!(engine.free_slots(), engine.capacity());
        prop_assert_eq!(engine.paused_count(), 0);
        prop_assert_eq!(engine.pending_resumes(), 0);
        prop_assert_eq!(engine.completions().len(), n, "each request retires exactly once");
        let report = engine.report(&policy);
        prop_assert_eq!(report.completed + report.cancellations + report.evicted, n);
        // A cancelled paused sequence pauses without ever resuming, so
        // resumes can trail preemptions but never exceed them.
        prop_assert!(report.resumes <= report.preemptions);
        prop_assert_eq!(
            report.per_model.iter().map(|m| m.completed).sum::<usize>(),
            report.completed
        );

        // Turn 2: resume every still-parked session, then cancel every
        // other resume before it is admitted — cancelled resume states
        // must be released, not leaked.
        let mut next_id = n as u64;
        let mut resumed_ids = Vec::new();
        for &sid in &seen_sessions {
            if let Some(snap) = store.take(sid) {
                let mut r = GenRequest::greedy(next_id, vec![7, 8], 2).with_session(sid);
                r.model = ((sid * 3) % 2) as usize;
                r.arrival_step = engine.clock();
                engine.submit_with_state(r, snap).unwrap();
                resumed_ids.push(next_id);
                next_id += 1;
            }
        }
        for (k, &id) in resumed_ids.iter().enumerate() {
            if k % 2 == 0 {
                engine.cancel(id);
            }
        }
        let mut steps2 = 0u64;
        while engine.has_work() && steps2 < 200_000 {
            engine.step(&mut policy).unwrap();
            steps2 += 1;
            prop_assert_eq!(
                engine.free_slots() + engine.active_count(),
                engine.capacity()
            );
        }
        prop_assert_eq!(engine.free_slots(), engine.capacity());
        prop_assert_eq!(engine.paused_count(), 0);
        prop_assert_eq!(
            engine.pending_resumes(),
            0,
            "no resume state leaks, whether served or cancelled first"
        );
        prop_assert_eq!(engine.completions().len(), n + resumed_ids.len());
    }

    #[test]
    fn thread_count_never_changes_outputs_under_churn(
        spec in workload(),
        slots in 2usize..5,
        schedule in churn_schedule(),
        cancel_mask in proptest::collection::vec(any::<bool>(), 14),
        cancel_gap in 1u64..6,
    ) {
        // The worker pool shards each sub-batch across threads but keeps
        // per-sequence arithmetic untouched, so a 4-thread engine must be
        // bit-identical to the sequential one under *any* interleaving of
        // preemption churn, client cancellation, and session retirement —
        // on both the FP and the packed-integer backends.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        let run = |threads: usize| {
            let mut reg = ModelRegistry::new();
            reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
            reg.register("w4a4", Box::new(W4A4Backend::new(q.clone()))).unwrap();
            let mut requests = build_requests(&spec);
            for r in &mut requests {
                r.model = (r.id % 2) as usize;
                if r.id % 3 == 0 {
                    r.session = Some(r.id / 3);
                }
            }
            let mut engine = ServeEngine::with_registry(
                reg,
                EngineConfig { slots, max_steps: 200_000, prefill_chunk: 2, threads,
..Default::default()
},
            ).unwrap();
            engine.submit(requests).unwrap();
            let mut policy = ChurnFifo::new(schedule.clone());
            let mut steps = 0u64;
            let mut next_cancel = 0usize;
            while engine.has_work() && steps < 200_000 {
                if steps % cancel_gap == 0 && next_cancel < cancel_mask.len() {
                    if cancel_mask[next_cancel] {
                        engine.cancel(next_cancel as u64);
                    }
                    next_cancel += 1;
                }
                engine.step(&mut policy).unwrap();
                steps += 1;
            }
            let mut done: Vec<_> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.finish, c.tokens.clone()))
                .collect();
            done.sort_by_key(|&(id, ..)| id);
            done
        };
        let sequential = run(1);
        let threaded = run(4);
        prop_assert_eq!(sequential, threaded);
    }

    #[test]
    fn wfq_accounting_stays_consistent_under_cancellation(
        spec in workload(),
        slots in 1usize..5,
        cancel_mask in proptest::collection::vec(any::<bool>(), 14),
    ) {
        // Cancelled requests vanish mid-service; WFQ's virtual-time
        // accounting must neither starve the survivors nor double-count
        // the departed: the run drains, every request retires exactly
        // once, and per-step sub-batch traces still partition the batch.
        let model = tiny_model();
        let mut reg = ModelRegistry::new();
        reg.register("a", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("b", Box::new(FpBackend::new(&model))).unwrap();
        let mut requests = build_requests(&spec);
        for r in &mut requests {
            r.model = (r.id % 2) as usize;
        }
        let n = requests.len();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots, max_steps: 200_000, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut wfq = WeightedFair::equal();
        let mut steps = 0u64;
        let mut next_cancel = 0usize;
        while engine.has_work() && steps < 200_000 {
            if steps % 2 == 0 && next_cancel < cancel_mask.len() {
                if cancel_mask[next_cancel] {
                    engine.cancel(next_cancel as u64);
                }
                next_cancel += 1;
            }
            engine.step(&mut wfq).unwrap();
            steps += 1;
        }
        prop_assert!(!engine.has_work(), "WFQ must drain despite cancellations");
        let report = engine.report(&wfq);
        prop_assert_eq!(report.completed + report.cancellations + report.evicted, n);
        for (sub, &total) in report
            .trace
            .sub_batches_per_step
            .iter()
            .zip(&report.trace.batch_per_step)
        {
            prop_assert_eq!(sub.iter().sum::<usize>(), total);
        }
        for (sub, &total) in report
            .trace
            .sub_processed_per_step
            .iter()
            .zip(&report.trace.processed_per_step)
        {
            prop_assert_eq!(sub.iter().sum::<usize>(), total);
        }
    }

    #[test]
    fn wfq_shares_still_converge_under_preemption_churn(churn_every in 2usize..6) {
        // WFQ charges service to slot-holders only, so a steady drip of
        // pause/resume churn (which never changes *who* is entitled to
        // slots, only bounces residents through the paused queue) must
        // leave the long-run 3:1 share intact.
        struct ChurnWfq {
            wfq: WeightedFair,
            every: usize,
            step: usize,
        }
        impl Policy for ChurnWfq {
            fn select(&mut self, ctx: &lightmamba_serve::scheduler::AdmissionCtx<'_>) -> Vec<usize> {
                self.wfq.select(ctx)
            }
            fn preempt(&mut self, ctx: &lightmamba_serve::scheduler::AdmissionCtx<'_>) -> Vec<usize> {
                self.step += 1;
                if self.step % self.every == 0 && !ctx.residents.is_empty() {
                    vec![self.step % ctx.residents.len()]
                } else {
                    Vec::new()
                }
            }
            fn name(&self) -> &'static str {
                "churn-wfq"
            }
        }
        let model = tiny_model();
        let mut reg = ModelRegistry::new();
        reg.register("a", Box::new(FpBackend::new(&model))).unwrap();
        reg.register("b", Box::new(FpBackend::new(&model))).unwrap();
        let requests: Vec<GenRequest> = (0..600u64)
            .map(|id| GenRequest::greedy(id, vec![3; 2], 6).on_model((id % 2) as usize))
            .collect();
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig { slots: 6, max_steps: 400, prefill_chunk: 1, threads: 1 ,
..Default::default()
},
        ).unwrap();
        engine.submit(requests).unwrap();
        let mut policy = ChurnWfq {
            wfq: WeightedFair::new(vec![3.0, 1.0]),
            every: churn_every,
            step: 0,
        };
        let report = engine.run(&mut policy).unwrap();
        prop_assert!(engine.has_work(), "pool must stay saturated");
        prop_assert!(report.preemptions > 0, "churn must actually preempt");
        let a = report.per_model[0].processed_tokens as f64;
        let b = report.per_model[1].processed_tokens as f64;
        let share = a / (a + b);
        prop_assert!(
            (share - 0.75).abs() < 0.12,
            "weight-3 model took {:.3} of the pool under churn (want ≈ 0.75, {} preemptions)",
            share,
            report.preemptions
        );
    }

    #[test]
    fn prefix_cache_is_inert_off_and_bit_identical_on(
        spec in workload(),
        prefix in proptest::collection::vec(0u32..256, 2..6),
        mark_mask in proptest::collection::vec(any::<bool>(), 14),
        slots in 1usize..5,
        schedule in churn_schedule(),
        chunk in 1usize..4,
        cancel_mask in proptest::collection::vec(any::<bool>(), 14),
        cancel_gap in 1u64..6,
    ) {
        // The tentpole pin, three ways, on both backends under
        // preemption churn, client cancellation, and session traffic:
        //   1. shared-prefix markers with the cache *off* change nothing
        //      at all — same retirements, same finishes, same tokens;
        //   2. with the cache *on*, every request that ran to completion
        //      decodes bit-identically to the cache-less run (restored
        //      states are exact, harvests are invisible);
        //   3. the cache-on engine is thread-count invariant.
        let model = tiny_model();
        let q = tiny_w4a4(&model);
        // Same prompts everywhere: a marked request's prompt carries
        // the common prefix in *all* runs; only the marker differs.
        let mut base = build_requests(&spec);
        for r in &mut base {
            r.model = (r.id % 2) as usize;
            if r.id % 3 == 0 {
                r.session = Some(r.id / 3);
            }
            if mark_mask[r.id as usize % mark_mask.len()] {
                let mut p = prefix.clone();
                p.extend_from_slice(&r.prompt);
                r.prompt = p;
            }
        }
        let marked: Vec<GenRequest> = base
            .iter()
            .cloned()
            .map(|r| {
                if mark_mask[r.id as usize % mark_mask.len()] {
                    let k = prefix.len();
                    r.with_shared_prefix(k)
                } else {
                    r
                }
            })
            .collect();
        let n = base.len();

        let run = |requests: &[GenRequest], cache: Option<usize>, threads: usize| {
            let mut reg = ModelRegistry::new();
            reg.register("fp", Box::new(FpBackend::new(&model))).unwrap();
            reg.register("w4a4", Box::new(W4A4Backend::new(q.clone()))).unwrap();
            let mut engine = ServeEngine::with_registry(
                reg,
                EngineConfig {
                    slots,
                    max_steps: 200_000,
                    prefill_chunk: chunk,
                    threads,
                    prefix_cache: cache,
                    ..Default::default()
                },
            ).unwrap();
            engine.submit(requests.to_vec()).unwrap();
            let mut policy = ChurnFifo::new(schedule.clone());
            let mut steps = 0u64;
            let mut next_cancel = 0usize;
            while engine.has_work() && steps < 200_000 {
                if steps % cancel_gap == 0 && next_cancel < cancel_mask.len() {
                    if cancel_mask[next_cancel] {
                        engine.cancel(next_cancel as u64);
                    }
                    next_cancel += 1;
                }
                engine.step(&mut policy).unwrap();
                steps += 1;
                engine.take_session_snapshots();
            }
            let mut done: Vec<_> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.finish, c.tokens.clone()))
                .collect();
            done.sort_by_key(|&(id, ..)| id);
            done
        };

        // 1. Cache off: the marker is completely inert — identical
        //    retirement stream, cancellations included.
        let baseline = run(&base, None, 1);
        prop_assert_eq!(baseline.len(), n);
        let marked_off = run(&marked, None, 1);
        prop_assert_eq!(&baseline, &marked_off);

        // 2. Cache on: restores shift *when* work happens (so a
        //    mid-flight cancel may land differently), but every request
        //    that ran to completion in both runs is bit-identical.
        let cached = run(&marked, Some(4), 1);
        prop_assert_eq!(cached.len(), n, "every request still retires exactly once");
        use lightmamba_serve::request::FinishReason;
        let finished = |f: lightmamba_serve::request::FinishReason| {
            matches!(f, FinishReason::MaxTokens | FinishReason::Eos)
        };
        for ((id_a, fin_a, toks_a), (id_b, fin_b, toks_b)) in baseline.iter().zip(&cached) {
            prop_assert_eq!(id_a, id_b);
            if finished(*fin_a) && finished(*fin_b) {
                prop_assert_eq!(
                    toks_a,
                    toks_b,
                    "request {} diverged with the prefix cache on",
                    id_a
                );
            }
        }

        // 3. Thread-count invariance with the cache on.
        prop_assert_eq!(&cached, &run(&marked, Some(4), 4));
    }

    #[test]
    fn token_budget_caps_hold_and_no_request_starves_under_every_policy(
        spec in workload(),
        slots in 1usize..5,
        prefill_cap in 5usize..24,
        total_cap in 12usize..60,
        chunk in 1usize..5,
    ) {
        // For every admission policy and an arbitrary budget at least as
        // wide as one request (the valve covers narrower ones): no step
        // ever feeds more prefill tokens than the cap, no step ever
        // holds more resident footprint than the total cap, the deferral
        // counters reconcile, and every request still completes —
        // deferral is backpressure, never starvation. Outputs stay
        // policy- and budget-independent.
        use lightmamba_serve::scheduler::{policy_by_name, TokenBudget, POLICY_NAMES};
        let model = tiny_model();
        let requests = build_requests(&spec);
        let n = requests.len();
        let budget = TokenBudget::new(prefill_cap, total_cap).unwrap();
        let mut reference: Option<Vec<(u64, Vec<u32>)>> = None;
        for name in POLICY_NAMES {
            let mut policy = policy_by_name(name).unwrap();
            let mut engine = ServeEngine::new(
                &model,
                EngineConfig {
                    slots,
                    max_steps: 200_000,
                    prefill_chunk: chunk,
                    threads: 1,
                    token_budget: Some(budget),
                    ..Default::default()
                },
            ).unwrap();
            engine.submit(requests.clone()).unwrap();
            let report = engine.run(policy.as_mut()).unwrap();

            prop_assert_eq!(report.completed, n, "{}: a request starved", name);
            for (t, &fed) in report.trace.prefill_per_step.iter().enumerate() {
                prop_assert!(
                    fed <= prefill_cap,
                    "{}: step {} fed {} prefill tokens past the {} cap",
                    name, t, fed, prefill_cap
                );
            }
            for (t, &resident) in report.trace.resident_tokens_per_step.iter().enumerate() {
                prop_assert!(
                    resident <= total_cap,
                    "{}: step {} held {} resident tokens past the {} cap",
                    name, t, resident, total_cap
                );
            }
            prop_assert!(engine.peak_resident_tokens() <= total_cap);
            prop_assert_eq!(
                report.budget_deferrals,
                report
                    .trace
                    .budget_deferred_per_step
                    .iter()
                    .map(|&d| d as u64)
                    .sum::<u64>()
            );
            let mut out: Vec<(u64, Vec<u32>)> = engine
                .completions()
                .iter()
                .map(|c| (c.id, c.tokens.clone()))
                .collect();
            out.sort();
            match &reference {
                None => reference = Some(out),
                Some(want) => prop_assert_eq!(
                    &out, want,
                    "{}: outputs changed under the budget", name
                ),
            }
        }
    }
}

/// The bench acceptance pin: on the deadline-heavy scenario (the exact
/// workload `serve_traffic`'s policy study runs, shortened), EDF's
/// deadline-hit-rate strictly beats FIFO's, under chunked prefill, with
/// outputs still bit-identical between the two runs.
#[test]
fn edf_strictly_beats_fifo_on_the_deadline_heavy_scenario() {
    let model = tiny_model();
    let q = tiny_w4a4(&model);
    let run = |policy: &mut dyn Policy| {
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model)))
            .unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(q.clone())))
            .unwrap();
        let mut traffic = TrafficGenerator::new(
            TrafficScenario::deadline_heavy(0.5),
            model.config().vocab_size,
            7,
        )
        .with_models(2);
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig {
                slots: 16,
                max_steps: 1_000_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(traffic.generate(150)).unwrap();
        let report = engine.run(policy).unwrap();
        let mut outputs: Vec<(u64, Vec<u32>)> = engine
            .completions()
            .iter()
            .filter(|c| c.finish != lightmamba_serve::request::FinishReason::DeadlineExceeded)
            .map(|c| (c.id, c.tokens.clone()))
            .collect();
        outputs.sort();
        (report, outputs)
    };
    let (fifo, fifo_out) = run(&mut Fifo);
    let (edf, edf_out) = run(&mut Edf::default());
    assert_eq!(fifo.deadline_total, edf.deadline_total);
    assert!(fifo.deadline_total > 0);
    assert!(
        edf.deadline_hit_rate() > fifo.deadline_hit_rate(),
        "edf {:?} must strictly beat fifo {:?}",
        edf.deadline_hit_rate(),
        fifo.deadline_hit_rate()
    );
    // Bit-identity across policies: every request both policies
    // completed produced the same tokens.
    let edf_map: std::collections::HashMap<u64, &Vec<u32>> =
        edf_out.iter().map(|(id, t)| (*id, t)).collect();
    let mut compared = 0usize;
    for (id, tokens) in &fifo_out {
        if let Some(other) = edf_map.get(id) {
            assert_eq!(&tokens, other, "request {id} diverged across policies");
            compared += 1;
        }
    }
    assert!(compared > 0);
}

/// The preemption acceptance pin: on the preemption-heavy scenario (the
/// exact workload `serve_traffic --preempt` runs, shortened), EDF with
/// pause/resume strictly beats non-preemptive EDF on deadline hit rate
/// — reordering the queue cannot save a tight deadline while
/// deadline-free hogs camp on every slot; pausing one can — with
/// outputs still bit-identical between the two runs.
#[test]
fn preemptive_edf_strictly_beats_plain_edf_on_the_preemption_heavy_scenario() {
    let model = tiny_model();
    let q = tiny_w4a4(&model);
    let run = |policy: &mut dyn Policy| {
        let mut reg = ModelRegistry::new();
        reg.register("fp", Box::new(FpBackend::new(&model)))
            .unwrap();
        reg.register("w4a4", Box::new(W4A4Backend::new(q.clone())))
            .unwrap();
        let mut traffic = TrafficGenerator::new(
            TrafficScenario::preemption_heavy(0.6),
            model.config().vocab_size,
            7,
        )
        .with_models(2);
        let mut engine = ServeEngine::with_registry(
            reg,
            EngineConfig {
                slots: 8,
                max_steps: 1_000_000,
                prefill_chunk: 4,
                threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        engine.submit(traffic.generate(200)).unwrap();
        let report = engine.run(policy).unwrap();
        let mut outputs: Vec<(u64, Vec<u32>)> = engine
            .completions()
            .iter()
            .filter(|c| c.finish != lightmamba_serve::request::FinishReason::DeadlineExceeded)
            .map(|c| (c.id, c.tokens.clone()))
            .collect();
        outputs.sort();
        (report, outputs)
    };
    let (plain, plain_out) = run(&mut Edf::default());
    let (pre, pre_out) = run(&mut Edf::preemptive());
    assert_eq!(plain.deadline_total, pre.deadline_total);
    assert!(plain.deadline_total > 0);
    assert_eq!(plain.preemptions, 0, "plain EDF must never pause anyone");
    assert!(pre.preemptions > 0, "the scenario must actually preempt");
    assert!(
        pre.deadline_hit_rate() > plain.deadline_hit_rate(),
        "preemptive {:?} must strictly beat plain {:?} ({} preemptions, resume p50 {:.1})",
        pre.deadline_hit_rate(),
        plain.deadline_hit_rate(),
        pre.preemptions,
        pre.resume_latency_steps.p50,
    );
    // Preemption reshuffles *when* requests run, never *what* they
    // produce: every request both runs completed emitted identical
    // tokens.
    let pre_map: std::collections::HashMap<u64, &Vec<u32>> =
        pre_out.iter().map(|(id, t)| (*id, t)).collect();
    let mut compared = 0usize;
    for (id, tokens) in &plain_out {
        if let Some(other) = pre_map.get(id) {
            assert_eq!(&tokens, other, "request {id} diverged under preemption");
            compared += 1;
        }
    }
    assert!(compared > 0);
}
