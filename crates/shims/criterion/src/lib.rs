//! Offline shim of `criterion 0.5`: a calibrated timing loop with the
//! upstream macro/entry-point surface, no statistical analysis.
//!
//! `cargo bench` with this shim prints one `name ... mean ns/iter` line
//! per benchmark. Swapping in real criterion restores full reports with
//! no source changes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per benchmark (calibration + measurement).
const TARGET_MEASURE: Duration = Duration::from_millis(120);

/// Runs closures under a timing loop, printing one line per benchmark.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Measures `f` under the benchmark `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&id.into(), f);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with the group name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.name, id.into()), f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` does the measuring.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the calibrated iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_named<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one batch is long enough
    // to time reliably, or until the calibration budget is spent.
    let mut iters: u64 = 1;
    let calibration_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_MEASURE / 4
            || calibration_start.elapsed() >= TARGET_MEASURE
            || iters >= 1 << 30
        {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    println!("{name:<48} {per_iter:>14.1} ns/iter  ({iters} iters)");
}

/// Declares a function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
