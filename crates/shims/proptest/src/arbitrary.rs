//! The [`any`] entry point and [`Arbitrary`] implementations.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (whole domain for `bool` and integers,
/// `[0, 1)` for floats in this shim).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy produced by [`any`] for primitives.
pub struct StandardAny<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Strategy for StandardAny<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }

        impl Arbitrary for $t {
            type Strategy = StandardAny<$t>;

            fn arbitrary() -> Self::Strategy {
                StandardAny { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
