//! Strategies for collections (`proptest::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A number of elements: either exact or drawn from a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose
/// length comes from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
