//! Offline shim of `proptest 1`: random-generation property testing
//! without shrinking.
//!
//! Implements the combinator and macro surface this workspace's property
//! tests use. Each failing case prints its seed so it can be replayed by
//! temporarily pinning the seed in the runner loop. Upstream proptest is
//! a drop-in replacement when registry access exists.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The items property tests conventionally glob-import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Rejects the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Declares property tests: each `pat in strategy` binding is sampled per
/// case, and the body runs for `ProptestConfig::cases` accepted cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])+
        fn $name:ident( $($bound:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __max_attempts = __config.cases.saturating_mul(16).max(64);
                let mut __accepted: u32 = 0;
                let mut __attempt: u32 = 0;
                while __accepted < __config.cases && __attempt < __max_attempts {
                    __attempt += 1;
                    let __seed = $crate::test_runner::case_seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        __attempt,
                    );
                    let mut __rng = $crate::test_runner::rng_for_seed(__seed);
                    let __outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(
                            let $bound = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed (seed {:#x}, case {}): {}",
                                __seed, __attempt, msg
                            );
                        }
                    }
                }
                assert!(
                    __accepted >= __config.cases.min(1),
                    "proptest rejected every generated case"
                );
            }
        )*
    };
}
