//! Strategies that pick from explicit value lists
//! (`proptest::sample::select`).

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// See [`select`].
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

/// Uniformly selects one of `options`; panics when empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}
