//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Value` (shim: generation only, no
/// shrinking; `sample` plays the role of upstream's `new_tree`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxes a strategy behind `dyn` for heterogeneous unions
/// (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice among strategies producing the same value type.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let width = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rand::RngCore::next_u64(rng) as u128 % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_inclusive_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo >= hi {
                    return lo;
                }
                rng.gen_range(lo..hi)
            }
        }
    )*};
}
impl_range_inclusive_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
