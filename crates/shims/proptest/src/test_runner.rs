//! Runner configuration and case outcome types used by the `proptest!`
//! macro expansion.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG property strategies draw from.
pub type TestRng = StdRng;

/// Runner configuration (shim: only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trims to keep the full
        // workspace test suite fast in CI.
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was filtered out by `prop_assume!`.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-test, per-case seed (FNV-1a over the test path,
/// mixed with the case index).
pub fn case_seed(test_path: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Builds the RNG for one case.
pub fn rng_for_seed(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}
