//! Offline shim of the `rand 0.8` API surface used by this workspace.
//!
//! Implements the subset the reproduction consumes — seedable generators
//! plus uniform sampling — with upstream-compatible module paths so the
//! real crate is a drop-in replacement if registry access ever appears.
//! `StdRng` here is xoshiro256++ seeded through SplitMix64: deterministic
//! per seed, but its streams do not match upstream's ChaCha12.

use std::ops::Range;

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A distribution that can produce values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over `[0, 1)` for
/// floats, uniform over the full domain for integers and `bool`.
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 explicit mantissa bits -> uniform multiples of 2^-24 in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that support uniform sampling from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_float {
    ($t:ty, $std:expr) => {
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u: $t = $std.sample(rng);
                let v = lo + (hi - lo) * u;
                // `u < 1` keeps v < hi except for float rounding at the
                // extreme; fall back to lo, which is always in range.
                if v < hi {
                    v
                } else {
                    lo
                }
            }
        }
    };
}
impl_uniform_float!(f32, Standard);
impl_uniform_float!(f64, Standard);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let width = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 for every range the workspace uses.
                let off = (rng.next_u64() as u128 % width) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] exactly as in upstream `rand`.
pub trait Rng: RngCore {
    /// Draws a value of the inferred type from [`Standard`].
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range` is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_in(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (shim stand-in for upstream's
    /// ChaCha12-based `StdRng`; streams differ from upstream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start at the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let i = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.gen_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = takes_generic(&mut rng);
        let _ = takes_generic(&mut rng);
    }
}
