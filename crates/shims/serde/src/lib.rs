//! Offline shim of `serde 1`: marker traits plus no-op derives.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no data is
//! serialized yet), so marker traits are enough for everything to
//! compile. The real crate is a drop-in replacement.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
