//! Offline shim of `serde_derive`: the derives expand to nothing.
//!
//! Nothing in this workspace serializes yet — the derives exist so that
//! `#[derive(Serialize, Deserialize)]` on model/accel types compiles.
//! Swapping in the real `serde_derive` restores full functionality with
//! no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
