//! Scalar activation functions used by Mamba2.
//!
//! The SSM layer (paper Fig. 1) uses `SiLU` on the gate `z`, `Softplus` on
//! the timestep `Δ`, and `exp` for the state decay `Ā = exp(Δ·A)`. All are
//! provided as plain scalar functions plus slice helpers so both the FP32
//! reference and the quantized fixed-point paths can call them.

/// Logistic sigmoid `1 / (1 + e^(-x))`.
///
/// # Example
///
/// ```
/// let y = lightmamba_tensor::activation::sigmoid(0.0);
/// assert!((y - 0.5).abs() < 1e-6);
/// ```
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// SiLU (a.k.a. swish): `x * sigmoid(x)` — the `σ` gate of the Mamba block.
pub fn silu(x: f32) -> f32 {
    x * sigmoid(x)
}

/// Softplus `ln(1 + e^x)`, numerically stable for large `|x|`.
///
/// Applied to the timestep projection `Δ` before the SSM recurrence.
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        // e^-x underflows the addend; softplus(x) = x + ln(1+e^-x) ≈ x.
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Applies [`silu`] to every element of a slice in place.
pub fn silu_slice(xs: &mut [f32]) {
    for x in xs {
        *x = silu(*x);
    }
}

/// Applies [`softplus`] to every element of a slice in place.
pub fn softplus_slice(xs: &mut [f32]) {
    for x in xs {
        *x = softplus(*x);
    }
}

/// Numerically stable softmax over a slice, returning a new vector.
///
/// Used by the LM-head evaluation to turn logits into next-token
/// distributions for the KL-based perplexity proxy.
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Log-softmax over a slice, returning a new vector.
pub fn log_softmax(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = xs.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    xs.iter().map(|&x| x - max - log_sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        for &x in &[-10.0f32, -1.0, 0.0, 1.0, 10.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_stable_for_extremes() {
        assert!(sigmoid(-100.0).is_finite());
        assert!(sigmoid(100.0).is_finite());
        assert!(sigmoid(-100.0) < 1e-20);
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn silu_known_values() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.731_058_6).abs() < 1e-5);
        // SiLU is bounded below by roughly -0.2785.
        assert!(silu(-1.278_46) > -0.3);
    }

    #[test]
    fn softplus_known_values_and_stability() {
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((softplus(50.0) - 50.0).abs() < 1e-4);
        assert!(softplus(-50.0) >= 0.0);
        assert!(softplus(-50.0) < 1e-20);
    }

    #[test]
    fn softplus_is_monotone() {
        let mut prev = softplus(-30.0);
        let mut x = -30.0f32;
        while x < 30.0 {
            x += 0.5;
            let y = softplus(x);
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    fn slice_helpers_apply_elementwise() {
        let mut xs = [0.0f32, 1.0];
        silu_slice(&mut xs);
        assert_eq!(xs[0], 0.0);
        assert!((xs[1] - silu(1.0)).abs() < 1e-7);
        let mut ys = [0.0f32];
        softplus_slice(&mut ys);
        assert!((ys[0] - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let xs = [0.3f32, -1.2, 2.0, 0.0];
        let p = softmax(&xs);
        let lp = log_softmax(&xs);
        for (pi, lpi) in p.iter().zip(lp.iter()) {
            assert!((pi.ln() - lpi).abs() < 1e-5);
        }
    }

    #[test]
    fn empty_slices_are_fine() {
        assert!(softmax(&[]).is_empty());
        assert!(log_softmax(&[]).is_empty());
    }
}
