//! Depthwise causal 1-D convolution — the `Conv` box of the Mamba block.
//!
//! Mamba2 applies a short (kernel size 4) depthwise causal convolution to
//! the concatenated `(x, B, C)` stream right after the input projection.
//! During autoregressive decode the convolution degenerates to a sliding
//! window per channel, which [`ConvState`] maintains.

use serde::{Deserialize, Serialize};

use crate::{Result, Tensor, TensorError};

/// Rolling per-channel window for decode-time causal conv1d.
///
/// # Example
///
/// ```
/// use lightmamba_tensor::conv::ConvState;
/// use lightmamba_tensor::Tensor;
///
/// # fn main() -> Result<(), lightmamba_tensor::TensorError> {
/// // 2 channels, kernel width 3, identity-ish kernel weights.
/// let weight = Tensor::from_vec(vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0], &[2, 3])?;
/// let bias = vec![0.0, 0.0];
/// let mut state = ConvState::new(2, 3);
/// let y1 = state.step(&[1.0, 10.0], &weight, &bias)?;
/// assert_eq!(y1, vec![1.0, 10.0]); // kernel picks the newest sample
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvState {
    channels: usize,
    kernel: usize,
    /// `channels × kernel` ring of past inputs, oldest first.
    window: Vec<f32>,
}

impl ConvState {
    /// Creates a zero-initialized window for `channels` channels and a
    /// causal kernel of width `kernel`.
    pub fn new(channels: usize, kernel: usize) -> Self {
        ConvState {
            channels,
            kernel,
            window: vec![0.0; channels * kernel],
        }
    }

    /// Number of channels tracked by this state.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Kernel width tracked by this state.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Resets the window to zeros (start of a new sequence).
    pub fn reset(&mut self) {
        self.window.fill(0.0);
    }

    /// Copies `other`'s window into this state without reallocating —
    /// the restore half of decode-state pause/resume.
    ///
    /// # Panics
    ///
    /// Panics when the two states disagree on channels or kernel width;
    /// states of different model configurations are never
    /// interchangeable, so a mismatch is a caller bug.
    pub fn copy_from(&mut self, other: &ConvState) {
        assert_eq!(
            (self.channels, self.kernel),
            (other.channels, other.kernel),
            "conv state shape mismatch"
        );
        self.window.copy_from_slice(&other.window);
    }

    /// Pushes one new sample per channel and returns the depthwise causal
    /// convolution output for the current position.
    ///
    /// `weight` is `(channels, kernel)` with taps ordered oldest→newest;
    /// `bias` has one entry per channel.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `input`/`bias` lengths or
    /// the weight shape disagree with this state.
    pub fn step(&mut self, input: &[f32], weight: &Tensor, bias: &[f32]) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; self.channels];
        self.step_into(input, weight, bias, &mut out)?;
        Ok(out)
    }

    /// [`ConvState::step`] writing into a caller-provided buffer of one
    /// entry per channel — the allocation-free variant decode hot paths
    /// use.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConvState::step`], plus a shape error when
    /// `out` has the wrong length.
    pub fn step_into(
        &mut self,
        input: &[f32],
        weight: &Tensor,
        bias: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        if input.len() != self.channels || bias.len() != self.channels || out.len() != self.channels
        {
            return Err(TensorError::ShapeMismatch {
                left: vec![self.channels],
                right: vec![input.len(), bias.len(), out.len()],
            });
        }
        let (wc, wk) = weight.as_matrix_dims()?;
        if wc != self.channels || wk != self.kernel {
            return Err(TensorError::ShapeMismatch {
                left: vec![self.channels, self.kernel],
                right: vec![wc, wk],
            });
        }
        let w = weight.data();
        for c in 0..self.channels {
            let win = &mut self.window[c * self.kernel..(c + 1) * self.kernel];
            win.rotate_left(1);
            win[self.kernel - 1] = input[c];
            let taps = &w[c * self.kernel..(c + 1) * self.kernel];
            let mut acc = bias[c];
            for (t, x) in taps.iter().zip(win.iter()) {
                acc += t * x;
            }
            out[c] = acc;
        }
        Ok(())
    }
}

/// Full-sequence depthwise causal conv1d (prefill path).
///
/// `input` is `(seq_len, channels)`, `weight` is `(channels, kernel)` with
/// taps ordered oldest→newest, `bias` has one entry per channel. Output
/// matches the input shape; positions before the kernel has filled are
/// zero-padded on the left, exactly as decode-time [`ConvState`] behaves
/// from a reset window.
///
/// # Errors
///
/// Returns a shape error when dimensions disagree.
pub fn causal_conv1d(input: &Tensor, weight: &Tensor, bias: &[f32]) -> Result<Tensor> {
    let (seq, channels) = input.as_matrix_dims()?;
    let (wc, kernel) = weight.as_matrix_dims()?;
    if wc != channels || bias.len() != channels {
        return Err(TensorError::ShapeMismatch {
            left: vec![channels],
            right: vec![wc, bias.len()],
        });
    }
    let x = input.data();
    let w = weight.data();
    let mut out = Tensor::zeros(&[seq, channels]);
    let o = out.data_mut();
    for t in 0..seq {
        for c in 0..channels {
            let taps = &w[c * kernel..(c + 1) * kernel];
            let mut acc = bias[c];
            for (k, tap) in taps.iter().enumerate() {
                // Tap k looks back (kernel-1-k) steps.
                let back = kernel - 1 - k;
                if t >= back {
                    acc += tap * x[(t - back) * channels + c];
                }
            }
            o[t * channels + c] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_weight() -> Tensor {
        // 1 channel, kernel [0.25, 0.5, 1.0] (oldest→newest).
        Tensor::from_vec(vec![0.25, 0.5, 1.0], &[1, 3]).unwrap()
    }

    #[test]
    fn state_step_matches_manual_window() {
        let w = simple_weight();
        let mut st = ConvState::new(1, 3);
        let y1 = st.step(&[1.0], &w, &[0.0]).unwrap();
        assert_eq!(y1, vec![1.0]); // window [0,0,1]
        let y2 = st.step(&[2.0], &w, &[0.0]).unwrap();
        assert_eq!(y2, vec![0.5 * 1.0 + 1.0 * 2.0]); // window [0,1,2]
        let y3 = st.step(&[3.0], &w, &[0.0]).unwrap();
        assert_eq!(y3, vec![0.25 * 1.0 + 0.5 * 2.0 + 1.0 * 3.0]);
    }

    #[test]
    fn bias_is_added() {
        let w = simple_weight();
        let mut st = ConvState::new(1, 3);
        let y = st.step(&[0.0], &w, &[5.0]).unwrap();
        assert_eq!(y, vec![5.0]);
    }

    #[test]
    fn reset_clears_history() {
        let w = simple_weight();
        let mut st = ConvState::new(1, 3);
        st.step(&[9.0], &w, &[0.0]).unwrap();
        st.reset();
        let y = st.step(&[1.0], &w, &[0.0]).unwrap();
        assert_eq!(y, vec![1.0]);
    }

    #[test]
    fn full_sequence_matches_stepwise() {
        let w = Tensor::from_vec(vec![0.1, -0.2, 0.7, 0.3, 0.5, -0.4], &[2, 3]).unwrap();
        let bias = [0.05, -0.1];
        let seq: Vec<f32> = (0..10).map(|i| (i as f32 * 0.37).sin()).collect();
        let input =
            Tensor::from_vec(seq.iter().flat_map(|&v| [v, -v]).collect(), &[10, 2]).unwrap();

        let full = causal_conv1d(&input, &w, &bias).unwrap();

        let mut st = ConvState::new(2, 3);
        for t in 0..10 {
            let got = st.step(input.row(t).unwrap(), &w, &bias).unwrap();
            for (c, &g) in got.iter().enumerate().take(2) {
                let want = full.get(&[t, c]).unwrap();
                assert!((g - want).abs() < 1e-6, "t={t} c={c}: {g} vs {want}");
            }
        }
    }

    #[test]
    fn shape_validation() {
        let w = simple_weight();
        let mut st = ConvState::new(1, 3);
        assert!(st.step(&[1.0, 2.0], &w, &[0.0, 0.0]).is_err());
        let bad_w = Tensor::zeros(&[2, 3]);
        assert!(st.step(&[1.0], &bad_w, &[0.0]).is_err());
        let input = Tensor::zeros(&[4, 1]);
        assert!(causal_conv1d(&input, &bad_w, &[0.0]).is_err());
    }

    #[test]
    fn accessors() {
        let st = ConvState::new(3, 4);
        assert_eq!(st.channels(), 3);
        assert_eq!(st.kernel(), 4);
    }
}
