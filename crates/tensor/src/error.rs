use std::error::Error;
use std::fmt;

/// Errors produced by tensor construction and kernels.
///
/// All variants carry enough context to diagnose the failing call site
/// without a debugger; the `Display` messages follow the std convention of
/// lowercase prose without trailing punctuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The element count of the provided buffer does not match the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A tensor with the wrong rank was supplied (e.g. a 3-D tensor to a
    /// strictly 2-D kernel).
    RankMismatch {
        /// Rank required by the operation.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// An index exceeded the bounds of the indexed dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The size of the dimension being indexed.
        len: usize,
    },
    /// An argument was structurally invalid (empty shape, zero group size…).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape volume {expected}"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions disagree: left has {left_cols} columns, right has {right_rows} rows"
            ),
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank-{expected} tensor, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension of size {len}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        let errs: Vec<TensorError> = vec![
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![2, 2],
                right: vec![3],
            },
            TensorError::MatmulDimMismatch {
                left_cols: 2,
                right_rows: 3,
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 3,
            },
            TensorError::IndexOutOfBounds { index: 5, len: 4 },
            TensorError::InvalidArgument("x".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
