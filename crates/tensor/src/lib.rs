//! Minimal dense-tensor substrate for the LightMamba reproduction.
//!
//! The paper's algorithms (Mamba2 inference, rotation-assisted quantization,
//! power-of-two SSM quantization) only require dense `f32` tensors with a
//! handful of kernels: matrix multiplication, element-wise arithmetic, the
//! SiLU/Softplus/exp activations, RMS normalization, depthwise causal conv1d,
//! and distribution statistics. This crate implements exactly that surface —
//! no autograd, no broadcasting zoo — so the numerics above it stay auditable.
//!
//! # Example
//!
//! ```
//! use lightmamba_tensor::Tensor;
//!
//! # fn main() -> Result<(), lightmamba_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

mod error;
mod shape;
mod tensor;

pub mod activation;
pub mod conv;
pub mod norm;
pub mod ops;
pub mod rng;
pub mod stats;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
