//! RMS normalization, including the scale-split form required by the
//! rotation-assisted quantization algorithm.
//!
//! The paper's fusion ② (Fig. 4a) relies on the identity
//! `RMSNorm_γ(x) = RMSNorm(x) ⊙ γ`: the *unscaled* RMSNorm commutes with an
//! orthogonal rotation of the residual stream, so the per-channel scale `γ`
//! must be split out and folded into the downstream projection weights
//! before the rotation can be fused. [`rms_norm`] applies the scaled form,
//! [`rms_norm_unscaled`] the split form.

/// Root-mean-square of a slice with numerical floor `eps`.
pub fn rms(xs: &[f32], eps: f32) -> f32 {
    if xs.is_empty() {
        return eps.sqrt();
    }
    let ms = xs.iter().map(|v| v * v).sum::<f32>() / xs.len() as f32;
    (ms + eps).sqrt()
}

/// Scaled RMSNorm: `y_i = x_i / rms(x) * gamma_i`, in place.
///
/// # Panics
///
/// Panics when `xs.len() != gamma.len()`.
pub fn rms_norm(xs: &mut [f32], gamma: &[f32], eps: f32) {
    assert_eq!(xs.len(), gamma.len(), "rmsnorm scale length mismatch");
    let r = rms(xs, eps);
    let inv = 1.0 / r;
    for (x, &g) in xs.iter_mut().zip(gamma.iter()) {
        *x = *x * inv * g;
    }
}

/// Unscaled RMSNorm: `y_i = x_i / rms(x)`, in place.
///
/// This is the rotation-commuting half of the scale-split identity used by
/// fusion ② of the rotation-assisted quantization algorithm.
pub fn rms_norm_unscaled(xs: &mut [f32], eps: f32) {
    let r = rms(xs, eps);
    let inv = 1.0 / r;
    for x in xs.iter_mut() {
        *x *= inv;
    }
}

/// Gated RMSNorm used by Mamba2 before the output projection:
/// `y = RMSNorm(x ⊙ silu(z)) ⊙ gamma`, in place on `xs`.
///
/// # Panics
///
/// Panics when slice lengths disagree.
pub fn gated_rms_norm(xs: &mut [f32], z: &[f32], gamma: &[f32], eps: f32) {
    assert_eq!(xs.len(), z.len(), "gated rmsnorm gate length mismatch");
    for (x, &zi) in xs.iter_mut().zip(z.iter()) {
        *x *= crate::activation::silu(zi);
    }
    rms_norm(xs, gamma, eps);
}

/// Gated RMSNorm with the scale split out (fusion ③/④ pathway): applies the
/// SiLU gate and unscaled normalization only, leaving `gamma` to be folded
/// into the output-projection weight by the caller.
///
/// # Panics
///
/// Panics when slice lengths disagree.
pub fn gated_rms_norm_unscaled(xs: &mut [f32], z: &[f32], eps: f32) {
    assert_eq!(xs.len(), z.len(), "gated rmsnorm gate length mismatch");
    for (x, &zi) in xs.iter_mut().zip(z.iter()) {
        *x *= crate::activation::silu(zi);
    }
    rms_norm_unscaled(xs, eps);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rms_of_unit_vector() {
        let xs = [1.0f32, 1.0, 1.0, 1.0];
        assert!((rms(&xs, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rms_empty_slice_uses_eps() {
        assert!((rms(&[], 1e-6) - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn scaled_norm_equals_unscaled_times_gamma() {
        let orig = [0.5f32, -2.0, 3.0, 1.0];
        let gamma = [2.0f32, 0.5, 1.0, -1.0];
        let mut a = orig;
        rms_norm(&mut a, &gamma, 1e-6);
        let mut b = orig;
        rms_norm_unscaled(&mut b, 1e-6);
        for ((ai, bi), gi) in a.iter().zip(b.iter()).zip(gamma.iter()) {
            assert!((ai - bi * gi).abs() < 1e-6);
        }
    }

    #[test]
    fn unscaled_norm_output_has_unit_rms() {
        let mut xs = [3.0f32, -4.0, 12.0, 0.5];
        rms_norm_unscaled(&mut xs, 0.0);
        assert!((rms(&xs, 0.0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn norm_is_scale_invariant() {
        let mut a = [1.0f32, 2.0, 3.0];
        let mut b = [10.0f32, 20.0, 30.0];
        rms_norm_unscaled(&mut a, 0.0);
        rms_norm_unscaled(&mut b, 0.0);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn gated_norm_matches_manual_composition() {
        let orig = [1.0f32, -0.5, 2.0];
        let z = [0.3f32, 1.5, -0.7];
        let gamma = [1.0f32, 2.0, 0.5];
        let mut got = orig;
        gated_rms_norm(&mut got, &z, &gamma, 1e-6);

        let mut manual = orig;
        for (x, &zi) in manual.iter_mut().zip(z.iter()) {
            *x *= crate::activation::silu(zi);
        }
        rms_norm(&mut manual, &gamma, 1e-6);
        assert_eq!(got, manual);
    }

    #[test]
    fn gated_unscaled_plus_gamma_fold_equals_gated_scaled() {
        let orig = [1.0f32, -0.5, 2.0, 0.1];
        let z = [0.3f32, 1.5, -0.7, 0.0];
        let gamma = [1.0f32, 2.0, 0.5, -1.5];
        let mut scaled = orig;
        gated_rms_norm(&mut scaled, &z, &gamma, 1e-6);
        let mut split = orig;
        gated_rms_norm_unscaled(&mut split, &z, 1e-6);
        for (s, (u, g)) in scaled.iter().zip(split.iter().zip(gamma.iter())) {
            assert!((s - u * g).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scaled_norm_panics_on_gamma_mismatch() {
        let mut xs = [1.0f32, 2.0];
        rms_norm(&mut xs, &[1.0], 1e-6);
    }
}
