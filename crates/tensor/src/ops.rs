//! Linear-algebra and element-wise kernels.
//!
//! These are the arithmetic primitives behind the Mamba2 projections
//! ([`Tensor::matmul`]/[`Tensor::matvec`]), the SSM recurrence (element-wise
//! outer products), and the rotation fusions of the quantization algorithm
//! (dense matrix products with Hadamard factors).

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Dense matrix product `self @ rhs` for rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when either operand is not a
    /// matrix and [`TensorError::MatmulDimMismatch`] when the inner
    /// dimensions disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use lightmamba_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), lightmamba_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// let c = a.matmul(&b)?;
    /// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = self.as_matrix_dims()?;
        let (k2, n) = rhs.as_matrix_dims()?;
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = rhs.data();
        let o = out.data_mut();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut o[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *ov += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self @ x` where `self` is `(m, k)` and `x`
    /// has `k` elements; returns a length-`m` vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `self` is not a matrix
    /// and [`TensorError::MatmulDimMismatch`] when lengths disagree.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        let (m, _) = self.as_matrix_dims()?;
        let mut out = vec![0.0f32; m];
        self.matvec_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::matvec`] writing into a caller-provided buffer of length
    /// `m` — the allocation-free variant decode hot paths use.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matvec`], plus
    /// [`TensorError::ShapeMismatch`] when `out` has the wrong length.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) -> Result<()> {
        let (m, k) = self.as_matrix_dims()?;
        if x.len() != k {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: x.len(),
            });
        }
        if out.len() != m {
            return Err(TensorError::ShapeMismatch {
                left: vec![m],
                right: vec![out.len()],
            });
        }
        let a = self.data();
        for (i, o) in out.iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (&w, &v) in row.iter().zip(x.iter()) {
                acc += w * v;
            }
            *o = acc;
        }
        Ok(())
    }

    /// Vector–matrix product `x @ self` where `self` is `(k, n)` and `x`
    /// has `k` elements; returns a length-`n` vector.
    ///
    /// This is the natural orientation for activations-times-weights with
    /// row-major weight storage `(in_features, out_features)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `self` is not a matrix
    /// and [`TensorError::MatmulDimMismatch`] when lengths disagree.
    pub fn vecmat(&self, x: &[f32]) -> Result<Vec<f32>> {
        let (_, n) = self.as_matrix_dims()?;
        let mut out = vec![0.0f32; n];
        self.vecmat_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Tensor::vecmat`] writing into a caller-provided buffer of length
    /// `n` — the allocation-free variant decode hot paths use. The buffer
    /// is overwritten, not accumulated into.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::vecmat`], plus
    /// [`TensorError::ShapeMismatch`] when `out` has the wrong length.
    pub fn vecmat_into(&self, x: &[f32], out: &mut [f32]) -> Result<()> {
        let (k, n) = self.as_matrix_dims()?;
        if x.len() != k {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: x.len(),
                right_rows: k,
            });
        }
        if out.len() != n {
            return Err(TensorError::ShapeMismatch {
                left: vec![n],
                right: vec![out.len()],
            });
        }
        let a = self.data();
        out.fill(0.0);
        for (p, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = &a[p * n..(p + 1) * n];
            for (o, &w) in out.iter_mut().zip(row.iter()) {
                *o += xv * w;
            }
        }
        Ok(())
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `self` is not a matrix.
    pub fn transpose(&self) -> Result<Tensor> {
        let (m, n) = self.as_matrix_dims()?;
        let a = self.data();
        let mut out = Tensor::zeros(&[n, m]);
        let o = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                o[j * m + i] = a[i * n + j];
            }
        }
        Ok(out)
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product — the `⊙` of the paper's Eq. 1a.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul_elem(&self, rhs: &Tensor) -> Result<Tensor> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Frobenius (L2) norm over all elements.
    pub fn frobenius_norm(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

/// Outer product accumulate: `out[i][j] += scale * a[i] * b[j]`.
///
/// This is the `(Δ·B)⊗x` update at the heart of the SSM state recurrence,
/// written against raw slices so the quantized path can reuse it.
///
/// # Panics
///
/// Panics when `out.len() != a.len() * b.len()`.
pub fn outer_accumulate(out: &mut [f32], a: &[f32], b: &[f32], scale: f32) {
    assert_eq!(
        out.len(),
        a.len() * b.len(),
        "outer product output length mismatch"
    );
    let n = b.len();
    for (i, &av) in a.iter().enumerate() {
        let row = &mut out[i * n..(i + 1) * n];
        let s = av * scale;
        for (o, &bv) in row.iter_mut().zip(b.iter()) {
            *o += s * bv;
        }
    }
}

/// In-place AXPY: `y[i] += alpha * x[i]`.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    assert_eq!(y.len(), x.len(), "axpy length mismatch");
    for (yo, &xv) in y.iter_mut().zip(x.iter()) {
        *yo += alpha * xv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
    }

    #[test]
    fn matvec_and_vecmat_agree_with_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let x = [1.0, -1.0, 2.0];
        let mv = a.matvec(&x).unwrap();
        assert_eq!(mv, vec![5.0, 11.0]);
        let y = [1.0, -1.0];
        let vm = a.vecmat(&y).unwrap();
        assert_eq!(vm, vec![-3.0, -3.0, -3.0]);
    }

    #[test]
    fn matvec_rejects_bad_length() {
        let a = Tensor::zeros(&[2, 3]);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-2.0, -3.0]);
        assert_eq!(a.mul_elem(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dot_outer_axpy() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut out = vec![0.0; 4];
        outer_accumulate(&mut out, &[1.0, 2.0], &[3.0, 4.0], 1.0);
        assert_eq!(out, vec![3.0, 4.0, 6.0, 8.0]);
        let mut y = vec![1.0, 1.0];
        axpy(&mut y, 2.0, &[1.0, 3.0]);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
