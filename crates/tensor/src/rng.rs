//! Deterministic random sampling used for synthetic weights/activations.
//!
//! The reproduction substitutes pretrained checkpoints with structurally
//! faithful synthetic tensors (see DESIGN.md §1), so all randomness must be
//! seedable and dependency-light. Gaussian samples come from a Box–Muller
//! transform over `rand`'s uniform source; heavy-tailed samples come from a
//! Student-t-like mixture that matches the kurtosis regime of LLM
//! activations.

use rand::Rng;

use crate::Tensor;

/// Draws one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Guard u1 away from 0 so ln(u1) is finite.
    let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draws a normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
    mean + std * standard_normal(rng)
}

/// Draws a heavy-tailed sample: standard normal with probability
/// `1 - tail_prob`, otherwise normal with `tail_scale`× the deviation.
///
/// This Gaussian scale-mixture has excess kurtosis controlled by
/// `tail_prob`/`tail_scale` and is the building block for the scattered
/// activation outliers of the paper's Fig. 2.
pub fn heavy_tailed<R: Rng + ?Sized>(rng: &mut R, tail_prob: f64, tail_scale: f32) -> f32 {
    if rng.gen_bool(tail_prob) {
        tail_scale * standard_normal(rng)
    } else {
        standard_normal(rng)
    }
}

impl Tensor {
    /// Creates a tensor of i.i.d. normal samples.
    pub fn randn<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Self {
        Tensor::from_fn(dims, |_| normal(rng, mean, std))
    }

    /// Creates a tensor of i.i.d. uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Self {
        Tensor::from_fn(dims, |_| rng.gen_range(lo..hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_respects_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng, 3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn heavy_tailed_has_excess_kurtosis() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40_000;
        let samples: Vec<f32> = (0..n).map(|_| heavy_tailed(&mut rng, 0.01, 10.0)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        let m4 = samples.iter().map(|v| (v - mean).powi(4)).sum::<f32>() / n as f32;
        let kurtosis = m4 / (var * var);
        assert!(
            kurtosis > 5.0,
            "kurtosis {kurtosis} should exceed gaussian 3"
        );
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = Tensor::randn(&mut StdRng::seed_from_u64(42), &[8], 0.0, 1.0);
        let b = Tensor::randn(&mut StdRng::seed_from_u64(42), &[8], 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = Tensor::rand_uniform(&mut rng, &[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }
}
