use serde::{Deserialize, Serialize};

use crate::TensorError;

/// The extent of each dimension of a [`Tensor`](crate::Tensor), row-major.
///
/// # Example
///
/// ```
/// use lightmamba_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.volume(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Extents of all dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when `index` has the wrong
    /// arity and [`TensorError::IndexOutOfBounds`] when any coordinate
    /// exceeds its dimension.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (d, (&i, &len)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= len {
                return Err(TensorError::IndexOutOfBounds { index: i, len });
            }
            off += i * strides[d];
        }
        Ok(off)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.volume(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.volume(), 1);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 2]).unwrap(), 2);
        assert_eq!(s.offset(&[1, 0]).unwrap(), 3);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_rejects_bad_rank_and_oob() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2x3)");
    }
}
