//! Distribution statistics and fidelity metrics.
//!
//! These back the paper's quantitative claims: quantization error (Table II,
//! Fig. 4b), outlier characterization (Fig. 2), and the KL-based perplexity
//! proxy that substitutes for the lm-eval-harness numbers in Table III.

use crate::Tensor;

/// Maximum absolute value of a slice (0 for empty input).
pub fn absmax(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance (0 for empty input).
pub fn variance(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&v| (v - m) * (v - m)).sum::<f32>() / xs.len() as f32
}

/// Pearson kurtosis `E[(x-μ)⁴]/σ⁴` (3 for a Gaussian; higher means heavier
/// tails, the signature of activation outliers).
pub fn kurtosis(xs: &[f32]) -> f32 {
    let m = mean(xs);
    let var = variance(xs);
    if var == 0.0 || xs.is_empty() {
        return 0.0;
    }
    let m4 = xs.iter().map(|&v| (v - m).powi(4)).sum::<f32>() / xs.len() as f32;
    m4 / (var * var)
}

/// Mean squared error between two equal-length slices.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn mse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "mse length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        / a.len() as f32
}

/// Sum of squared errors between two equal-length slices — the
/// "quantization error" metric of the paper's Table II and Fig. 4b.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn sse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sse length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
}

/// Cosine similarity (0 when either vector is zero).
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine length mismatch");
    let dot: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
    let na: f32 = a.iter().map(|&x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|&y| y * y).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// KL divergence `KL(p ‖ q)` between two probability vectors, in nats.
///
/// Entries of `q` are floored at `1e-10` to keep the result finite; `p`
/// entries of zero contribute nothing.
///
/// # Panics
///
/// Panics when the slices have different lengths.
pub fn kl_divergence(p: &[f32], q: &[f32]) -> f32 {
    assert_eq!(p.len(), q.len(), "kl length mismatch");
    p.iter()
        .zip(q.iter())
        .map(|(&pi, &qi)| {
            if pi <= 0.0 {
                0.0
            } else {
                pi * (pi / qi.max(1e-10)).ln()
            }
        })
        .sum()
}

/// Per-column maximum absolute value of a `(rows, cols)` matrix — the
/// per-channel outlier profile plotted in Fig. 2.
///
/// # Panics
///
/// Panics when the tensor is not rank 2.
pub fn per_channel_absmax(t: &Tensor) -> Vec<f32> {
    let (rows, cols) = t
        .as_matrix_dims()
        .expect("per_channel_absmax requires a matrix");
    let d = t.data();
    let mut out = vec![0.0f32; cols];
    for r in 0..rows {
        for (c, o) in out.iter_mut().enumerate() {
            *o = o.max(d[r * cols + c].abs());
        }
    }
    out
}

/// Per-row maximum absolute value of a `(rows, cols)` matrix (per-token
/// profile).
///
/// # Panics
///
/// Panics when the tensor is not rank 2.
pub fn per_token_absmax(t: &Tensor) -> Vec<f32> {
    let (rows, _) = t
        .as_matrix_dims()
        .expect("per_token_absmax requires a matrix");
    (0..rows)
        .map(|r| absmax(t.row(r).expect("row in range")))
        .collect()
}

/// Fraction of entries whose magnitude exceeds `threshold` times the
/// root-mean-square of the slice. A scattered-outlier diagnostic: in
/// Transformer activations these concentrate in a few channels, in Mamba
/// they spread across channels and tokens.
pub fn outlier_fraction(xs: &[f32], threshold: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let r = crate::norm::rms(xs, 0.0);
    if r == 0.0 {
        return 0.0;
    }
    let count = xs.iter().filter(|&&v| v.abs() > threshold * r).count();
    count as f32 / xs.len() as f32
}

/// Histogram of `xs` over `bins` equal-width buckets spanning `[lo, hi)`;
/// values outside the range are clamped into the end buckets. Used to render
/// the Fig. 2 distribution plots in text form.
pub fn histogram(xs: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<usize> {
    let mut h = vec![0usize; bins.max(1)];
    if xs.is_empty() || hi <= lo {
        return h;
    }
    let width = (hi - lo) / bins as f32;
    for &x in xs {
        let idx = (((x - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
        h[idx] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absmax_mean_variance() {
        let xs = [1.0f32, -3.0, 2.0];
        assert_eq!(absmax(&xs), 3.0);
        assert!((mean(&xs) - 0.0).abs() < 1e-6);
        assert!((variance(&xs) - (1.0 + 9.0 + 4.0) / 3.0).abs() < 1e-6);
        assert_eq!(absmax(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn kurtosis_gaussian_vs_spiky() {
        // Constant-magnitude signal has kurtosis 1 (sub-Gaussian).
        let flat = [1.0f32, -1.0, 1.0, -1.0];
        assert!((kurtosis(&flat) - 1.0).abs() < 1e-5);
        // A single large spike drives kurtosis far above 3.
        let mut spiky = vec![0.1f32; 99];
        spiky.push(100.0);
        assert!(kurtosis(&spiky) > 50.0);
    }

    #[test]
    fn mse_and_sse() {
        let a = [1.0f32, 2.0];
        let b = [2.0f32, 4.0];
        assert!((mse(&a, &b) - 2.5).abs() < 1e-6);
        assert!((sse(&a, &b) - 5.0).abs() < 1e-6);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_zero_for_identical_distributions() {
        let p = [0.2f32, 0.3, 0.5];
        assert!(kl_divergence(&p, &p).abs() < 1e-7);
        let q = [0.5f32, 0.3, 0.2];
        assert!(kl_divergence(&p, &q) > 0.0);
    }

    #[test]
    fn channel_and_token_profiles() {
        let t = Tensor::from_vec(vec![1.0, -5.0, 2.0, 3.0], &[2, 2]).unwrap();
        assert_eq!(per_channel_absmax(&t), vec![2.0, 5.0]);
        assert_eq!(per_token_absmax(&t), vec![5.0, 3.0]);
    }

    #[test]
    fn outlier_fraction_detects_spikes() {
        let mut xs = vec![1.0f32; 99];
        xs.push(50.0);
        let f = outlier_fraction(&xs, 5.0);
        assert!((f - 0.01).abs() < 1e-6);
        assert_eq!(outlier_fraction(&[], 5.0), 0.0);
        assert_eq!(outlier_fraction(&[0.0, 0.0], 5.0), 0.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = histogram(&[-10.0, 0.1, 0.2, 0.9, 10.0], 0.0, 1.0, 2);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h, vec![3, 2]);
        assert_eq!(histogram(&[], 0.0, 1.0, 3), vec![0, 0, 0]);
    }
}
