use serde::{Deserialize, Serialize};

use crate::{Result, Shape, TensorError};

/// A dense, row-major `f32` tensor.
///
/// This is the single numeric container used throughout the LightMamba
/// reproduction. It owns its buffer; kernels that need scratch space take
/// and return owned tensors per C-CALLER-CONTROL.
///
/// # Example
///
/// ```
/// use lightmamba_tensor::Tensor;
///
/// # fn main() -> Result<(), lightmamba_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.get(&[1, 2])?, 6.0);
/// assert_eq!(t.row(1)?, &[4.0, 5.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.volume()];
        Tensor { shape, data }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer in a tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` does not
    /// equal the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Builds a tensor by evaluating `f` at every multi-dimensional index
    /// in row-major order (the closure receives the linear index).
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.volume()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn get(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Writes an element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the buffer under a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(mut self, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.volume() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Borrow of row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::IndexOutOfBounds`] for an invalid row.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        let (rows, cols) = self.as_matrix_dims()?;
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: i,
                len: rows,
            });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }

    /// Mutable borrow of row `i` of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::row`].
    pub fn row_mut(&mut self, i: usize) -> Result<&mut [f32]> {
        let (rows, cols) = self.as_matrix_dims()?;
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds {
                index: i,
                len: rows,
            });
        }
        Ok(&mut self.data[i * cols..(i + 1) * cols])
    }

    /// Interprets the tensor as a matrix and returns `(rows, cols)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn as_matrix_dims(&self) -> Result<(usize, usize)> {
        match self.dims() {
            [r, c] => Ok((*r, *c)),
            other => Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.len(),
            }),
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_full_eye() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::full(&[3], 2.5).data(), &[2.5; 3]);
        let i = Tensor::eye(2);
        assert_eq!(i.data(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 3], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 1], 7.0).unwrap();
        assert_eq!(t.get(&[1, 1]).unwrap(), 7.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.clone().reshape(&[4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn rows_are_contiguous() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1).unwrap(), &[4.0, 5.0, 6.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn row_rejects_non_matrix() {
        let t = Tensor::zeros(&[2, 2, 2]);
        assert!(matches!(t.row(0), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn map_and_zip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip_with(&b, |x, y| x + y).unwrap().data(), &[4.0, 6.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.zip_with(&c, |x, _| x).is_err());
    }

    #[test]
    fn from_fn_linear_index() {
        let t = Tensor::from_fn(&[2, 2], |i| i as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
