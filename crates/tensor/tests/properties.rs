//! Property-based tests for the tensor substrate.

use lightmamba_tensor::{activation, norm, ops, stats, Tensor};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c).prop_map(move |v| (r, c, v))
    })
}

proptest! {
    #[test]
    fn matmul_identity_is_noop((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[r, c]).unwrap();
        let out = a.matmul(&Tensor::eye(c)).unwrap();
        for (x, y) in a.data().iter().zip(out.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        (r, c, d1) in small_matrix(),
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec(d1, &[r, c]).unwrap();
        let b = Tensor::from_fn(&[c, 3], |_| rng.gen_range(-10.0..10.0));
        let cmat = Tensor::from_fn(&[c, 3], |_| rng.gen_range(-10.0..10.0));
        let lhs = a.matmul(&b.add(&cmat).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&cmat).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-1, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involution((r, c, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[r, c]).unwrap();
        prop_assert_eq!(a.transpose().unwrap().transpose().unwrap(), a);
    }

    #[test]
    fn vecmat_matches_matmul_row(
        (r, c, data, row_vals) in small_matrix().prop_flat_map(|(r, c, data)| {
            proptest::collection::vec(-10.0f32..10.0, r).prop_map(move |v| (r, c, data.clone(), v))
        })
    ) {
        let w = Tensor::from_vec(data, &[r, c]).unwrap();
        let via_vecmat = w.vecmat(&row_vals).unwrap();
        let x = Tensor::from_vec(row_vals, &[1, r]).unwrap();
        let via_matmul = x.matmul(&w).unwrap();
        for (a, b) in via_vecmat.iter().zip(via_matmul.data().iter()) {
            prop_assert!((a - b).abs() < 1e-2);
        }
    }

    #[test]
    fn softmax_is_probability_vector(xs in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
        let p = activation::softmax(&xs);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn kl_is_nonnegative(
        a in proptest::collection::vec(0.01f32..10.0, 4),
        b in proptest::collection::vec(0.01f32..10.0, 4),
    ) {
        let pa = activation::softmax(&a);
        let pb = activation::softmax(&b);
        prop_assert!(stats::kl_divergence(&pa, &pb) >= -1e-6);
    }

    #[test]
    fn rms_norm_unscaled_gives_unit_rms(mut xs in proptest::collection::vec(-100.0f32..100.0, 2..64)) {
        prop_assume!(xs.iter().any(|&v| v.abs() > 1e-3));
        norm::rms_norm_unscaled(&mut xs, 0.0);
        prop_assert!((norm::rms(&xs, 0.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn silu_bounded_relative_to_input(x in -100.0f32..100.0) {
        let y = activation::silu(x);
        prop_assert!(y.abs() <= x.abs() + 1e-6);
        prop_assert!(y >= -0.279);
    }

    #[test]
    fn outer_accumulate_matches_matmul(
        a in proptest::collection::vec(-5.0f32..5.0, 1..6),
        b in proptest::collection::vec(-5.0f32..5.0, 1..6),
    ) {
        let mut out = vec![0.0f32; a.len() * b.len()];
        ops::outer_accumulate(&mut out, &a, &b, 2.0);
        let am = Tensor::from_vec(a.clone(), &[a.len(), 1]).unwrap();
        let bm = Tensor::from_vec(b.clone(), &[1, b.len()]).unwrap();
        let reference = am.matmul(&bm).unwrap().scale(2.0);
        for (x, y) in out.iter().zip(reference.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }
}
