//! Scenario: architecture design-space exploration with the cycle-level
//! simulator — the kind of pre-RTL study the paper's accelerator went
//! through (MMU sizing, EMU parallelism, pipeline mode) on both platforms.
//!
//! Run with: `cargo run --example design_space`

use lightmamba_repro::accel::arch::{AcceleratorConfig, PipelineMode};
use lightmamba_repro::accel::platform::Platform;
use lightmamba_repro::accel::resources;
use lightmamba_repro::accel::sim::DecodeSimulator;
use lightmamba_repro::model::{MambaConfig, ModelPreset};

fn main() {
    let model = MambaConfig::preset(ModelPreset::B2_7);
    println!("design-space exploration: Mamba2-2.7B decode\n");

    for platform in [Platform::vck190(), Platform::u280()] {
        println!(
            "platform {} ({:.0} GB/s, {} DSP budget):",
            platform.name,
            platform.bandwidth_bytes_per_s / 1e9,
            platform.dsp_total
        );
        println!(
            "  {:>5} {:>5} {:>4} | {:>9} {:>10} | {:>6} {:>9}",
            "din", "dout", "emu", "tokens/s", "bound", "DSP", "fits?"
        );
        let base = AcceleratorConfig::lightmamba_w4a4(&platform, &model);
        for (din, dout, emu) in [
            (4usize, 4usize, 2usize),
            (8, 8, 2),
            (16, 16, 8),
            (32, 32, 32),
            (64, 64, 64),
        ] {
            let cfg = AcceleratorConfig {
                mmu_din: din,
                mmu_dout: dout,
                emu_parallelism: emu,
                pipeline: PipelineMode::FineTiled,
                ..base.clone()
            };
            let res = resources::estimate(&model, &cfg);
            let fits = res.check_fits(&platform).is_ok();
            let report = DecodeSimulator::new(platform.clone(), model.clone(), cfg).decode_report();
            println!(
                "  {:>5} {:>5} {:>4} | {:>9.2} {:>10} | {:>6} {:>9}",
                din,
                dout,
                emu,
                report.tokens_per_s,
                if report.memory_bound {
                    "memory"
                } else {
                    "compute"
                },
                res.dsp,
                if fits { "yes" } else { "NO" },
            );
        }
        println!();
    }

    println!("observations (matching the paper's design choices):");
    println!(
        "  - on VCK190 the 12 GB/s LPDDR caps throughput: past a small MMU, more DSPs buy nothing"
    );
    println!("  - on U280 the design scales with compute until the HBM roof, hence the 5x bigger datapath");
}
