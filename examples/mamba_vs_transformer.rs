//! Scenario: Mamba vs Transformer at long output lengths — the paper's
//! motivating contrast (Sec. I and Fig. 9a), measured on real substrates
//! rather than asserted.
//!
//! Run with: `cargo run --example mamba_vs_transformer --release`

use lightmamba_repro::model::transformer::{TransformerConfig, TransformerModel};
use lightmamba_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1);
    let mamba = MambaModel::synthetic(MambaConfig::tiny(), &mut rng)?;
    let transformer = TransformerModel::synthetic(TransformerConfig::tiny(), &mut rng)?;

    println!("decoding 256 tokens on matched tiny models (d_model 48, 2 layers):\n");
    println!(
        "{:>6} | {:>16} {:>16} | {:>16} {:>16}",
        "step", "mamba state B", "mamba step flops", "kv cache B", "attn step flops"
    );

    let mut state = mamba.new_state();
    let mut cache = transformer.new_cache();
    // Mamba per-step work is configuration-only; estimate it once.
    let m_cfg = mamba.config();
    let mamba_flops = 2.0
        * (m_cfg.d_model * m_cfg.d_in_proj()
            + m_cfg.d_inner() * m_cfg.d_model
            + 3 * m_cfg.nheads() * m_cfg.headdim * m_cfg.d_state) as f64;

    for step in 0..256u32 {
        mamba.forward_step(step % 250, &mut state)?;
        transformer.forward_step(step % 250, &mut cache)?;
        if step % 64 == 63 || step == 0 {
            println!(
                "{:>6} | {:>16.0} {:>16.0} | {:>16.0} {:>16.0}",
                step + 1,
                state.total_state_bytes(16.0),
                mamba_flops,
                cache.bytes(16.0),
                transformer.step_flops(step as usize + 1),
            );
        }
    }

    println!();
    println!("Mamba columns are constant; Transformer columns grow linearly with the");
    println!("generated length — the mechanism behind the flat vs decaying curves of Fig. 9a");
    println!("and the reason LightMamba's accelerator needs no KV-cache memory system.");
    Ok(())
}
