//! Scenario: why Mamba breaks channel-wise PTQ — the scattered-outlier
//! study behind the paper's Sec. III Challenge 1 and Fig. 2.
//!
//! Generates Transformer-style (fixed-channel) and Mamba-style (scattered)
//! activations, then shows that calibrated channel-wise scaling only
//! helps the first, while rotation helps both.
//!
//! Run with: `cargo run --example outlier_study`

use lightmamba_repro::hadamard::FactoredHadamard;
use lightmamba_repro::model::synth::{channel_persistence, synthetic_activations, OutlierPattern};
use lightmamba_repro::quant::quantizer::{fake_quant, QuantScheme};
use lightmamba_repro::quant::smoothquant::smoothing_factors;
use lightmamba_repro::tensor::{stats, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHANNELS: usize = 1024;
const TOKENS: usize = 128;

fn quant_error_with_scaling(eval: &Tensor, factors: Option<&[f32]>) -> f32 {
    let (tokens, channels) = eval.as_matrix_dims().expect("matrix");
    let mut work = eval.clone();
    if let Some(s) = factors {
        let d = work.data_mut();
        for t in 0..tokens {
            for c in 0..channels {
                d[t * channels + c] /= s[c];
            }
        }
    }
    let mut q = fake_quant(&work, QuantScheme::act_per_group(4, 128)).expect("valid");
    if let Some(s) = factors {
        let d = q.data_mut();
        for t in 0..tokens {
            for c in 0..channels {
                d[t * channels + c] *= s[c];
            }
        }
    }
    stats::sse(eval.data(), q.data()) / tokens as f32
}

fn rotated_error(eval: &Tensor) -> f32 {
    let h = FactoredHadamard::new(CHANNELS).expect("constructible");
    let (tokens, channels) = eval.as_matrix_dims().expect("matrix");
    let mut total = 0.0;
    for t in 0..tokens {
        let mut row = eval.row(t).expect("row").to_vec();
        h.apply(&mut row);
        let rt = Tensor::from_vec(row.clone(), &[channels]).expect("length");
        let q = fake_quant(&rt, QuantScheme::act_per_group(4, 128)).expect("valid");
        // Orthogonality: error in rotated space equals error in original space.
        total += stats::sse(&row, q.data());
    }
    total / tokens as f32
}

fn study(name: &str, pattern: OutlierPattern, rng: &mut StdRng) {
    let calib = synthetic_activations(rng, TOKENS, CHANNELS, pattern);
    let eval = synthetic_activations(rng, TOKENS, CHANNELS, pattern);
    let persistence = channel_persistence(&eval, 8);
    let rtn = quant_error_with_scaling(&eval, None);
    let factors = smoothing_factors(
        &stats::per_channel_absmax(&calib),
        &vec![1.0; CHANNELS],
        0.5,
    );
    let sq = quant_error_with_scaling(&eval, Some(&factors));
    let rot = rotated_error(&eval);
    println!("{name}:");
    println!("  outlier-channel persistence: {persistence:.3}");
    println!("  4-bit error  RTN {rtn:10.1} | SmoothQuant {sq:10.1} | rotation {rot:10.1}");
    println!(
        "  channel-wise scaling {} ({}x vs RTN); rotation {}x vs RTN\n",
        if sq < 0.8 * rtn {
            "works"
        } else {
            "fails to beat RTN"
        },
        sq / rtn,
        rot / rtn,
    );
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2025);
    study(
        "Transformer-style activations (fixed outlier channels)",
        OutlierPattern::FixedChannels {
            channels: 8,
            magnitude: 40.0,
        },
        &mut rng,
    );
    study(
        "Mamba-style activations (scattered outlier channels, Fig. 2c)",
        OutlierPattern::Scattered {
            channels_per_token: 8,
            magnitude: 40.0,
        },
        &mut rng,
    );
    println!("conclusion: calibrated channel factors require persistent outlier channels;");
    println!(
        "rotation amortizes outliers regardless of where they appear — the premise of LightMamba."
    );
}
