//! Scenario: a PTQ method shoot-out on one model — the workflow a
//! practitioner would run before deploying a quantized Mamba, and the
//! programmatic form of the paper's Table III.
//!
//! Run with: `cargo run --example ptq_shootout --release`

use lightmamba_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MambaConfig::small();
    let mut rng = StdRng::seed_from_u64(7);
    let reference = MambaModel::synthetic(cfg.clone(), &mut rng)?;
    let corpus = lightmamba_repro::model::corpus::SyntheticCorpus::for_vocab(cfg.vocab_size);
    let calib = corpus.calibration_set(&mut rng, 4, 12);
    let eval = corpus.calibration_set(&mut rng, 6, 24);

    for (precision, spec) in [
        ("W8A8", QuantSpec::w8a8()),
        ("W4A4", QuantSpec::w4a4_grouped(32)),
    ] {
        println!("{precision}:");
        for method in Method::ALL {
            let mut quantized = quantize_model(&reference, method, &spec, &calib)?;
            let mut runner = ReferenceRunner::new(reference.clone());
            let rep = compare_models(&mut runner, &mut quantized, &eval)?;
            println!(
                "  {:12} ppl-factor {:.4} | agreement {:5.1}% | logit cosine {:.4} | weights {:5.1} Mbit",
                method.name(),
                rep.ppl_factor,
                rep.agreement * 100.0,
                rep.logit_cosine,
                quantized.weight_storage_bits() as f64 / 1e6,
            );
        }
        println!();
    }
    println!("reading: at W8A8 every method is near-lossless; at W4A4 only the");
    println!("rotation-assisted methods stay close to the reference (the paper's Table III).");
    Ok(())
}
