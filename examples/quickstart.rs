//! Quickstart: quantize a Mamba2 model with LightMamba's rotation-assisted
//! PTQ, check fidelity against the FP reference, and simulate the paper's
//! FPGA design points.
//!
//! Run with: `cargo run --example quickstart`

use lightmamba_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A laptop-scale Mamba2 with synthetic (scattered-outlier) weights.
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = MambaConfig::small();
    let reference = MambaModel::synthetic(cfg.clone(), &mut rng)?;
    println!(
        "model: d_model={} d_inner={} layers={} ({} params)",
        cfg.d_model,
        cfg.d_inner(),
        cfg.n_layer,
        cfg.param_count()
    );

    // 2. Quantize to W4A4 with rotation-assisted PTQ + PoT SSM quantization.
    let corpus = lightmamba_repro::model::corpus::SyntheticCorpus::for_vocab(cfg.vocab_size);
    let eval = corpus.calibration_set(&mut rng, 4, 24);
    let mut quantized = quantize_model(
        &reference,
        Method::LightMambaStar,
        &QuantSpec::w4a4_grouped(32),
        &[],
    )?;

    // 3. Fidelity against the FP32 reference.
    let mut runner = ReferenceRunner::new(reference);
    let fidelity = compare_models(&mut runner, &mut quantized, &eval)?;
    println!(
        "W4A4 LightMamba*: ppl-factor {:.3}, top-1 agreement {:.1}%, logit cosine {:.3}",
        fidelity.ppl_factor,
        fidelity.agreement * 100.0,
        fidelity.logit_cosine
    );

    // 4. Hardware: the paper's three Table IV design points on Mamba2-2.7B.
    println!("\nhardware design points (Mamba2-2.7B decode):");
    for target in Target::ALL {
        let report = CoDesign::new(target, ModelPreset::B2_7).hardware_report();
        println!(
            "  {:12} {:6.2} tokens/s | {:5.2} tokens/J | {} DSP | {} URAM | {}",
            target.name(),
            report.decode.tokens_per_s,
            report.power.tokens_per_joule,
            report.resources.dsp,
            report.resources.uram,
            if report.decode.memory_bound {
                "bandwidth-bound"
            } else {
                "compute-bound"
            },
        );
    }
    Ok(())
}
