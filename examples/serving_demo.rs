//! Serving demo: drive the continuous-batching engine on synthetic chat
//! traffic, compare it against static batching, and project throughput
//! onto the paper's FPGA design points.
//!
//! Run with: `cargo run --release --example serving_demo`

use lightmamba_repro::accel::arch::AcceleratorConfig;
use lightmamba_repro::accel::platform::Platform;
use lightmamba_repro::accel::sim::DecodeSimulator;
use lightmamba_repro::prelude::*;
use lightmamba_repro::serve::accel_cost::CostedRun;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A laptop-scale Mamba2 stands in for the 2.7B checkpoint; the
    //    engine trace (batch sizes, queueing) is what gets costed.
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = MambaConfig::tiny();
    let model = MambaModel::synthetic(cfg.clone(), &mut rng)?;

    // 2. Synthetic chat traffic: a closed-loop burst of 64 concurrent
    //    requests, all arriving at step 0 (swap in
    //    `TrafficScenario::chat(rate)` for open-loop Poisson arrivals).
    let scenario = TrafficScenario::burst(64);
    let mut traffic = TrafficGenerator::new(scenario, cfg.vocab_size, 7);
    let requests = traffic.generate(1);
    println!(
        "traffic: {} requests, {} prompt tokens total",
        requests.len(),
        requests.iter().map(|r| r.prompt.len()).sum::<usize>()
    );

    // 3. Run the same workload under both admission policies.
    let mut runs = Vec::new();
    let schedulers: [&mut dyn Scheduler; 2] = [&mut ContinuousBatching, &mut StaticBatching];
    for sched in schedulers {
        // 8 slots keeps the resident state inside VCK190's URAM bound
        // (~11 sequences at INT16 state for the 2.7B W4A4 point).
        let mut engine = ServeEngine::new(
            &model,
            EngineConfig {
                slots: 8,
                max_steps: 1_000_000,
            },
        )?;
        engine.submit(requests.clone())?;
        let report = engine.run(sched)?;
        println!(
            "{:>10}: {} completed in {} steps | occupancy {:.0}% | \
             TTFT p50/p99 {:.0}/{:.0} steps | queue p99 {:.0} steps",
            report.scheduler,
            report.completed,
            report.steps,
            report.mean_occupancy * 100.0,
            report.ttft_steps.p50,
            report.ttft_steps.p99,
            report.queue_steps.p99,
        );

        // 4. Project the run onto the paper's design points.
        let big = MambaConfig::preset(ModelPreset::B2_7);
        for (platform, acfg) in [
            (
                Platform::vck190(),
                AcceleratorConfig::lightmamba_w4a4(&Platform::vck190(), &big),
            ),
            (
                Platform::u280(),
                AcceleratorConfig::lightmamba_u280(&Platform::u280(), &big),
            ),
        ] {
            let sim = DecodeSimulator::new(platform, big.clone(), acfg);
            let mut cost = StepCostModel::new(sim);
            runs.push(cost.cost_run(&report, engine.completions()));
        }
    }

    // 5. The report table.
    println!();
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>9} {:>11} {:>11}",
        "scheduler", "platform", "tok/s (gen)", "tok/s (all)", "speedup", "TTFT p99 s", "e2e p99 s"
    );
    for r in &runs {
        print_row(r);
    }
    println!();
    println!(
        "single-stream baselines: VCK190 {:.2} tok/s, U280 {:.2} tok/s (paper: 7.21 / 93)",
        runs.iter()
            .find(|r| r.platform == "VCK190")
            .map(|r| r.single_stream_tokens_per_s)
            .unwrap_or(0.0),
        runs.iter()
            .find(|r| r.platform == "U280")
            .map(|r| r.single_stream_tokens_per_s)
            .unwrap_or(0.0),
    );
    Ok(())
}

fn print_row(r: &CostedRun) {
    println!(
        "{:<10} {:>8} {:>12.2} {:>12.2} {:>8.2}x {:>11.2} {:>11.2}{}",
        r.scheduler,
        r.platform,
        r.tokens_per_s,
        r.processed_tokens_per_s,
        r.speedup_vs_single_stream,
        r.ttft_s.p99,
        r.e2e_s.p99,
        if r.residency_ok {
            ""
        } else {
            "  [!] state exceeds URAM"
        },
    );
}
