//! Serving demo: drive the continuous-batching engine through pluggable
//! execution backends — the FP reference, the W4A4 quantized model, or
//! both multiplexed on one slot pool — and project throughput onto the
//! paper's FPGA design points (each backend priced with its own
//! weight-stream width).
//!
//! Run with: `cargo run --release --example serving_demo
//! [-- --backend fp|w4a4|mux
//!     --policy fifo|edf|edf-preempt|priority|priority-preempt|wfq
//!     --prefill-chunk K --threads N]`
//! (defaults: `mux` — FP + W4A4 sharing one pool — under `fifo` with
//! chunk 4). The chosen policy is compared against the static-batching
//! baseline on the same trace; preemptive policies additionally report
//! their pause/resume traffic (each move is one fixed-size Mamba state
//! — the preemption story the serve crate is built on).

use lightmamba_repro::accel::platform::Platform;
use lightmamba_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let mode = args.backend.clone();

    // 1. A laptop-scale Mamba2 stands in for the 2.7B checkpoint; the
    //    engine trace (batch sizes, queueing) is what gets costed. The
    //    W4A4 backend is its RTN-quantized counterpart.
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = MambaConfig::tiny();
    let model = MambaModel::synthetic(cfg.clone(), &mut rng)?;
    let quantized = quantize_model(&model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[])?;

    // 2. Synthetic chat traffic: a closed-loop burst of 64 concurrent
    //    requests spread round-robin over the registered models (swap in
    //    `TrafficScenario::chat(rate)` for open-loop Poisson arrivals).
    let n_models = if mode == "mux" { 2 } else { 1 };
    println!(
        "policy: {} | prefill chunk: {}",
        args.policy, args.prefill_chunk
    );
    let mut traffic =
        TrafficGenerator::new(TrafficScenario::burst(64), cfg.vocab_size, 7).with_models(n_models);
    let requests = traffic.generate(1);
    println!(
        "backend mode: {mode} | traffic: {} requests, {} prompt tokens total",
        requests.len(),
        requests.iter().map(|r| r.prompt.len()).sum::<usize>()
    );

    // 3. Run the workload under both admission policies and price every
    //    run per backend on the paper's VCK190 point.
    let big = MambaConfig::preset(ModelPreset::B2_7);
    let platform = Platform::vck190();
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12} {:>12} {:>15}",
        "policy", "model", "done", "attrib s", "tok/s (all)", "1-stream", "TTFT p50/p99 s"
    );
    let mut mux_gap: Option<f64> = None;
    for sched_pick in 0..2 {
        // Registries borrow the FP model, so build one per run.
        let mut registry = ModelRegistry::new();
        match mode.as_str() {
            "fp" => {
                registry.register("fp", Box::new(FpBackend::new(&model)))?;
            }
            "w4a4" => {
                registry.register("w4a4", Box::new(W4A4Backend::new(quantized.clone())))?;
            }
            _ => {
                registry.register("fp", Box::new(FpBackend::new(&model)))?;
                registry.register("w4a4", Box::new(W4A4Backend::new(quantized.clone())))?;
            }
        }
        let mut cost = MultiplexCostModel::for_registry(&registry, &platform, &big)?;

        // 8 slots keeps the resident state inside VCK190's URAM bound
        // (~11 sequences at INT16 state for the 2.7B W4A4 point).
        let mut engine = ServeEngine::with_registry(
            registry,
            EngineConfig {
                slots: 8,
                max_steps: 1_000_000,
                prefill_chunk: args.prefill_chunk,
                threads: args.threads,
                ..Default::default()
            },
        )?;
        engine.submit(requests.clone())?;
        let report = if sched_pick == 0 {
            engine.run(
                policy_by_name(&args.policy)
                    .expect("validated at parse")
                    .as_mut(),
            )?
        } else {
            engine.run(&mut StaticBatching)?
        };
        let run = cost.cost_run(&report, engine.completions())?;
        for m in &run.per_model {
            println!(
                "{:<10} {:>8} {:>8} {:>12.2} {:>12.2} {:>12.2} {:>15}{}",
                run.policy,
                m.model,
                m.completed,
                m.seconds,
                m.processed_tokens_per_s,
                m.single_stream_tokens_per_s,
                format!("{:.2} / {:.2}", m.ttft_s.p50, m.ttft_s.p99),
                if run.residency_ok {
                    ""
                } else {
                    "  [!] state exceeds URAM"
                },
            );
        }
        if sched_pick == 0 && report.preemptions > 0 {
            println!(
                "  [{}] preemptions: {} (resumes {}, resume p50 {:.0} steps, \
                 state transfer {:.1} ms)",
                run.policy,
                report.preemptions,
                report.resumes,
                report.resume_latency_steps.p50,
                run.state_transfer_s * 1e3,
            );
        }
        if mode == "mux" && sched_pick == 0 {
            let fp = &run.per_model[0];
            let w4 = &run.per_model[1];
            mux_gap = Some(w4.processed_tokens_per_s / fp.processed_tokens_per_s);
        }
    }

    // 4. The quantized-serving headline: at equal sub-batch sizes the
    //    W4A4 backend streams ~4× fewer weight bytes per step, so its
    //    projected serving throughput beats FP on the bandwidth-bound
    //    VCK190 — the serving extension of the paper's Fig. 9a.
    println!();
    if let Some(gap) = mux_gap {
        println!(
            "multiplexed W4A4 vs FP at equal batch: {gap:.2}x tokens/s \
             (weight stream is 4-bit + group scales vs 16-bit)"
        );
        assert!(
            gap >= 1.0,
            "W4A4 must not serve slower than FP at equal batch"
        );
    }
    println!(
        "single-stream W4A4 VCK190 baseline: {:.2} tokens/s (paper: 7.21)",
        CostProfile::w4a4()
            .accelerator_config(&platform, &big)
            .validate(&big)
            .map(|()| {
                lightmamba_repro::accel::sim::DecodeSimulator::new(
                    platform.clone(),
                    big.clone(),
                    CostProfile::w4a4().accelerator_config(&platform, &big),
                )
                .decode_report()
                .tokens_per_s
            })?
    );
    Ok(())
}

struct Args {
    backend: String,
    policy: String,
    prefill_chunk: usize,
    threads: usize,
}

fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        backend: "mux".to_string(),
        policy: "fifo".to_string(),
        prefill_chunk: 4,
        threads: 1,
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--backend" => {
                args.backend = argv
                    .get(i + 1)
                    .ok_or("--backend needs a value: fp | w4a4 | mux")?
                    .clone();
                i += 2;
            }
            "--policy" => {
                args.policy = argv
                    .get(i + 1)
                    .ok_or(
                        "--policy needs a value: fifo | edf | edf-preempt | priority | \
                         priority-preempt | wfq",
                    )?
                    .clone();
                i += 2;
            }
            "--prefill-chunk" => {
                args.prefill_chunk = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--prefill-chunk needs a positive integer")?;
                i += 2;
            }
            "--threads" => {
                args.threads = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a positive integer")?;
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }
    if !["fp", "w4a4", "mux"].contains(&args.backend.as_str()) {
        return Err(format!(
            "--backend must be fp, w4a4, or mux (got {:?})",
            args.backend
        )
        .into());
    }
    // policy_by_name's own error already lists every valid name.
    policy_by_name(&args.policy).map_err(|e| e.to_string())?;
    if args.prefill_chunk == 0 {
        return Err("--prefill-chunk must be positive".into());
    }
    if args.threads == 0 {
        return Err("--threads must be positive".into());
    }
    Ok(args)
}
