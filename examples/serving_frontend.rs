//! Streaming frontend demo: concurrent clients over one serving engine
//! — per-token streams, a mid-stream disconnect, and multi-turn chat
//! sessions resuming from parked Mamba states.
//!
//! Run with: `cargo run --release --example serving_frontend
//! [-- --policy fifo|edf|priority|... --clients N
//!  --metrics-dump metrics.prom --trace-out trace.json]`
//!
//! `--metrics-dump` writes the engine's Prometheus-style metrics
//! snapshot; `--trace-out` writes a two-lane Chrome trace (host wall
//! clock + VCK190-projected virtual time) viewable in
//! `chrome://tracing` or Perfetto. Either flag enables the engine's
//! observability layer for the run.
//!
//! Three client populations share one engine thread through cloned
//! handles: plain streaming clients that read to completion, an
//! impatient client that drops its stream after a few tokens (the
//! engine reclaims the slot within one step), and chat sessions whose
//! turns resume from the session store — each resume is one fixed-size
//! state transfer instead of re-prefilling the whole conversation,
//! which is exactly what Mamba2's constant-size state buys a serving
//! stack. The run is then priced on the paper's VCK190 design point so
//! the cancelled work and session state traffic show up in projected
//! seconds.

use lightmamba_repro::accel::platform::Platform;
use lightmamba_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut policy_name = "fifo".to_string();
    let mut clients = 6usize;
    let mut metrics_dump: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--policy" => {
                policy_name = argv.get(i + 1).ok_or("--policy needs a name")?.clone();
                i += 2;
            }
            "--clients" => {
                clients = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--clients needs a positive integer")?;
                i += 2;
            }
            "--metrics-dump" => {
                metrics_dump = Some(
                    argv.get(i + 1)
                        .ok_or("--metrics-dump needs an output path")?
                        .clone(),
                );
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(
                    argv.get(i + 1)
                        .ok_or("--trace-out needs an output path")?
                        .clone(),
                );
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}").into()),
        }
    }
    // The scheduler crate's own error already lists every valid name.
    let policy = policy_by_name(&policy_name).map_err(|e| e.to_string())?;

    // FP reference and its W4A4 quantization multiplexed on one pool.
    let mut rng = StdRng::seed_from_u64(42);
    let cfg = MambaConfig::tiny();
    let model = MambaModel::synthetic(cfg.clone(), &mut rng)?;
    let quantized = quantize_model(&model, Method::Rtn, &QuantSpec::w4a4_grouped(16), &[])?;
    let mut registry = ModelRegistry::new();
    registry.register("fp", Box::new(FpBackend::new(&model)))?;
    registry.register("w4a4", Box::new(W4A4Backend::new(quantized)))?;
    let platform = Platform::vck190();
    let big = MambaConfig::preset(ModelPreset::B2_7);
    let mut cost = MultiplexCostModel::for_registry(&registry, &platform, &big)?;
    let engine = ServeEngine::with_registry(
        registry,
        EngineConfig {
            slots: 8,
            max_steps: 1_000_000,
            prefill_chunk: 4,
            threads: 1,
            ..Default::default()
        },
    )?;

    println!(
        "policy: {policy_name} | {clients} streaming clients + 1 disconnect + 2 chat sessions"
    );
    let frontend_cfg = FrontendConfig {
        obs: (metrics_dump.is_some() || trace_out.is_some()).then(ObsConfig::default),
        ..FrontendConfig::default()
    };
    let ((), run) = run_frontend(engine, policy, frontend_cfg, |handle| {
        // Population 1: plain streaming clients, one thread each,
        // reading their streams to the terminal event.
        let streamers: Vec<_> = (0..clients)
            .map(|k| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let prompt: Vec<u32> = (1..=(4 + (k as u32 % 5))).collect();
                    let req = GenRequest::greedy(0, prompt, 8 + k % 7).on_model(k % 2);
                    let mut stream = h.submit(req).expect("valid request");
                    let mut tokens = 0usize;
                    let mut completion = None;
                    for ev in &mut stream {
                        match ev {
                            StreamEvent::Token { .. } => tokens += 1,
                            StreamEvent::Done(c) => completion = Some(*c),
                            _ => {}
                        }
                    }
                    let c = completion.expect("streamer runs to completion");
                    (tokens, c.id, c.tokens.len())
                })
            })
            .collect();

        // Population 2: an impatient client that hangs up after three
        // tokens — dropping the stream is the disconnect.
        let impatient = {
            let h = handle.clone();
            std::thread::spawn(move || {
                let mut stream = h
                    .submit(GenRequest::greedy(0, vec![9, 9, 9], 300))
                    .expect("valid request");
                let mut seen = 0;
                while let Some(ev) = stream.recv() {
                    if matches!(ev, StreamEvent::Token { .. }) {
                        seen += 1;
                        if seen == 3 {
                            break;
                        }
                    }
                }
                seen
                // `stream` drops here: the engine cancels the request
                // and reclaims the slot within one step.
            })
        };

        // Population 3: two chat sessions, three turns each. Turns of
        // one session are sequential (a user reads, then replies); the
        // sessions themselves run concurrently with everything else.
        let chats: Vec<_> = (0..2u64)
            .map(|sid| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let mut ttfts = Vec::new();
                    for turn in 0..3u32 {
                        let prompt: Vec<u32> =
                            (0..4).map(|t| 100 + sid as u32 * 10 + turn + t).collect();
                        let req = GenRequest::greedy(0, prompt, 6).with_session(sid);
                        let stream = h.submit(req).expect("valid request");
                        let c = stream.wait().expect("turn completes");
                        ttfts.push(c.ttft_steps().expect("turn produced tokens"));
                    }
                    ttfts
                })
            })
            .collect();

        for s in streamers {
            let (streamed, id, recorded) = s.join().expect("streamer thread");
            assert_eq!(streamed, recorded);
            println!("  client {id:>2}: streamed {streamed} tokens");
        }
        let seen = impatient.join().expect("impatient thread");
        println!("  impatient client: hung up after {seen} tokens");
        for (sid, chat) in chats.into_iter().enumerate() {
            let ttfts = chat.join().expect("chat thread");
            println!(
                "  chat session {sid}: TTFT per turn (steps) = {ttfts:?} \
                 (later turns resume a parked state)"
            );
        }
    })?;

    println!();
    println!(
        "engine: {} completed, {} cancelled ({} token-advances wasted, {} slot-steps reclaimed)",
        run.report.completed,
        run.report.cancellations,
        run.report.wasted_token_advances,
        run.report.reclaimed_slot_steps,
    );
    println!(
        "sessions: {} resumes, {} cold turns, {} still parked, {} LRU evictions",
        run.session_resumes, run.session_misses, run.sessions_stored, run.session_evictions,
    );

    let priced = cost.cost_run(&run.report, &run.completions)?;
    println!(
        "priced on {}: {:.3} s total | {:.6} s state transfers (preemption + session moves) | \
         {:.6} s wasted on cancelled work",
        priced.platform, priced.seconds, priced.state_transfer_s, priced.wasted_work_s,
    );

    if let Some(obs) = &run.obs {
        if let Some(path) = &metrics_dump {
            std::fs::write(path, obs.exposition())?;
            println!("wrote metrics snapshot to {path}");
        }
        if let Some(path) = &trace_out {
            let step_seconds = cost.trace_step_seconds(&run.report.trace)?;
            std::fs::write(path, obs.chrome_trace_with_virtual(&step_seconds))?;
            println!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
        }
    }

    assert!(
        run.report.cancellations >= 1,
        "the disconnect must register"
    );
    assert_eq!(run.session_resumes, 4, "two sessions x two follow-up turns");
    assert!(priced.wasted_work_s > 0.0);
    println!("OK");
    Ok(())
}
