//! Facade crate of the LightMamba reproduction workspace.
//!
//! Re-exports the member crates under stable names so the examples and
//! integration tests read like downstream code:
//!
//! * [`tensor`] — dense `f32` tensors and kernels;
//! * [`hadamard`] — FHT / Paley / factored Hadamard transforms;
//! * [`model`] — the Mamba2 inference substrate;
//! * [`quant`] — the LightMamba PTQ stack and its baselines;
//! * [`accel`] — the FPGA accelerator cycle/resource/power models;
//! * [`core`] — the co-design pipeline and Fig. 10 ablation;
//! * [`serve`] — the continuous-batching serving engine with
//!   accelerator-costed throughput projection, plus the streaming
//!   frontend (per-token streams, cancellation, multi-turn sessions);
//! * [`obs`] — the observability substrate (metrics registry,
//!   step-phase span tracing, flight recorder) the engine reports
//!   through.
//!
//! # Example
//!
//! ```
//! use lightmamba_repro::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let reference = MambaModel::synthetic(MambaConfig::tiny(), &mut rng)?;
//! let quantized = quantize_model(
//!     &reference,
//!     Method::LightMamba,
//!     &QuantSpec::w4a4_grouped(16),
//!     &[],
//! )?;
//! assert!(quantized.precision().weight.is_some());
//! # Ok(())
//! # }
//! ```

pub use lightmamba as core;
pub use lightmamba_accel as accel;
pub use lightmamba_hadamard as hadamard;
pub use lightmamba_model as model;
pub use lightmamba_obs as obs;
pub use lightmamba_quant as quant;
pub use lightmamba_serve as serve;
pub use lightmamba_tensor as tensor;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use lightmamba::ablation::{run_ablation, AblationStage};
    pub use lightmamba::codesign::{CoDesign, Target};
    pub use lightmamba_accel::arch::AcceleratorConfig;
    pub use lightmamba_accel::platform::{GpuDevice, Platform};
    pub use lightmamba_accel::sim::DecodeSimulator;
    pub use lightmamba_hadamard::{FactoredHadamard, RandomizedHadamard};
    pub use lightmamba_model::eval::{compare_models, ReferenceRunner, StepModel};
    pub use lightmamba_model::{MambaConfig, MambaModel, ModelPreset};
    pub use lightmamba_obs::{FlightRecorder, MetricsRegistry, SpanRecorder};
    pub use lightmamba_quant::pipeline::{quantize_model, Method, QuantSpec};
    pub use lightmamba_quant::qmodel::{Precision, QuantizedMamba};
    pub use lightmamba_serve::accel_cost::{MultiplexCostModel, StepCostModel};
    pub use lightmamba_serve::backend::{
        CostProfile, DecodeBackend, FpBackend, PausedState, W4A4Backend,
    };
    pub use lightmamba_serve::engine::{EngineConfig, ServeEngine, SessionSnapshot, StepEvent};
    pub use lightmamba_serve::frontend::{
        run_frontend, FrontendConfig, FrontendHandle, FrontendRun, SessionStore, StreamEvent,
        TokenStream,
    };
    pub use lightmamba_serve::observe::{EngineObs, ObsConfig};
    pub use lightmamba_serve::registry::{ModelId, ModelRegistry};
    pub use lightmamba_serve::request::{GenRequest, Priority};
    pub use lightmamba_serve::scheduler::{
        policy_by_name, AdmissionCtx, Edf, Fifo, Policy, PriorityClasses, SeqView, StaticBatching,
        WeightedFair, POLICY_NAMES,
    };
    pub use lightmamba_serve::traffic::{TrafficGenerator, TrafficScenario};
}
