//! Cross-crate integration tests: the full quantize → evaluate → simulate
//! pipeline and the paper's headline orderings.

use lightmamba_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_setup(seed: u64) -> (MambaModel, Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let cfg = MambaConfig::small();
    let mut rng = StdRng::seed_from_u64(seed);
    let reference = MambaModel::synthetic(cfg.clone(), &mut rng).expect("valid config");
    let corpus = lightmamba_repro::model::corpus::SyntheticCorpus::for_vocab(cfg.vocab_size);
    let calib = corpus.calibration_set(&mut rng, 4, 12);
    let eval = corpus.calibration_set(&mut rng, 6, 24);
    (reference, calib, eval)
}

fn kl_for(method: Method, seed: u64) -> f32 {
    let (reference, calib, eval) = small_setup(seed);
    let mut q =
        quantize_model(&reference, method, &QuantSpec::w4a4_grouped(32), &calib).expect("quantize");
    let mut r = ReferenceRunner::new(reference);
    compare_models(&mut r, &mut q, &eval)
        .expect("compare")
        .mean_kl
}

#[test]
fn w4a4_method_ordering_matches_table3() {
    // The paper's headline ordering at W4A4, averaged over seeds:
    // LightMamba < RTN, SQ does not beat LightMamba, OS+ is the worst.
    let seeds = [101u64, 202, 303];
    let avg = |m: Method| -> f32 {
        seeds.iter().map(|&s| kl_for(m, s)).sum::<f32>() / seeds.len() as f32
    };
    let rtn = avg(Method::Rtn);
    let sq = avg(Method::SmoothQuant);
    let osp = avg(Method::OutlierSuppressionPlus);
    let ours = avg(Method::LightMamba);
    let ours_star = avg(Method::LightMambaStar);

    assert!(ours < rtn, "LightMamba {ours} must beat RTN {rtn}");
    assert!(ours < sq, "LightMamba {ours} must beat SQ {sq}");
    assert!(
        osp > rtn && osp > ours,
        "OS+ {osp} must be the worst (rtn {rtn}, ours {ours})"
    );
    assert!(
        ours_star < 1.5 * ours,
        "LightMamba* {ours_star} should stay near LightMamba {ours}"
    );
}

#[test]
fn w8a8_is_near_lossless_for_all_methods() {
    let (reference, calib, eval) = small_setup(55);
    for method in Method::ALL {
        let mut q =
            quantize_model(&reference, method, &QuantSpec::w8a8(), &calib).expect("quantize");
        let mut r = ReferenceRunner::new(reference.clone());
        let rep = compare_models(&mut r, &mut q, &eval).expect("compare");
        assert!(
            rep.mean_kl < 0.05,
            "{method} W8A8 KL {} too high",
            rep.mean_kl
        );
        assert!(
            rep.agreement > 0.7,
            "{method} W8A8 agreement {}",
            rep.agreement
        );
    }
}

#[test]
fn rotation_is_fp_invariant_end_to_end() {
    let (reference, _, eval) = small_setup(77);
    let mut prepared =
        lightmamba_repro::quant::PreparedModel::from_reference(&reference).expect("prepare");
    lightmamba_repro::quant::rotation::apply(
        &mut prepared,
        &lightmamba_repro::quant::rotation::RotationConfig::default(),
    )
    .expect("rotate");
    let mut fp =
        lightmamba_repro::quant::QuantizedMamba::new(prepared, Precision::fp()).expect("fp model");
    let mut r = ReferenceRunner::new(reference);
    let rep = compare_models(&mut r, &mut fp, &eval).expect("compare");
    assert!(
        rep.mean_kl < 1e-3,
        "rotation changed the FP function: {}",
        rep.mean_kl
    );
    assert!(rep.agreement > 0.99);
}

#[test]
fn full_codesign_pipeline_produces_consistent_reports() {
    for target in Target::ALL {
        let design = CoDesign::new(target, ModelPreset::B2_7);
        let hw = design.hardware_report();
        // Internal consistency: throughput = freq / cycles.
        let freq = target.platform().freq_hz;
        let implied = freq / hw.decode.cycles_per_token;
        assert!((implied - hw.decode.tokens_per_s).abs() / implied < 1e-9);
        // Energy identity.
        let p = hw.power;
        assert!((p.avg_power_w / hw.decode.tokens_per_s - p.energy_per_token_j).abs() < 1e-9);
        // Resources fit the platform.
        hw.resources.check_fits(&target.platform()).unwrap();
    }
}

#[test]
fn ablation_is_reproducible_and_ordered() {
    let a = run_ablation(9);
    let b = run_ablation(9);
    assert_eq!(a.len(), 7);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.stage, y.stage);
        assert!((x.tokens_per_s - y.tokens_per_s).abs() < 1e-12);
        assert!((x.accuracy_pct - y.accuracy_pct).abs() < 1e-9);
    }
    // Final stage is the full design: fastest and smallest URAM.
    let last = a.last().unwrap();
    assert!(a.iter().all(|r| r.tokens_per_s <= last.tokens_per_s + 1e-9));
    assert!(a.iter().all(|r| r.uram >= last.uram));
}

#[test]
fn decode_state_is_constant_in_generated_length() {
    // Mamba's defining property, end to end: generating more tokens does
    // not grow the state (the mechanism behind Fig. 9a's flat curve).
    let cfg = MambaConfig::tiny();
    let mut rng = StdRng::seed_from_u64(5);
    let model = MambaModel::synthetic(cfg, &mut rng).expect("valid");
    let mut state = model.new_state();
    model.prefill(&[1, 2, 3], &mut state).expect("prefill");
    let bytes_short = state.total_state_bytes(16.0);
    for t in 0..64 {
        model.forward_step(t % 250, &mut state).expect("step");
    }
    let bytes_long = state.total_state_bytes(16.0);
    assert_eq!(bytes_short, bytes_long);
}

#[test]
fn quantized_weight_traffic_matches_simulator_assumptions() {
    // The fidelity model's storage accounting and the hardware simulator's
    // DMA model must agree on the weight-bit budget.
    let (reference, _, _) = small_setup(31);
    let q = quantize_model(&reference, Method::Rtn, &QuantSpec::w4a4_grouped(32), &[])
        .expect("quantize");
    let bits = q.weight_storage_bits() as f64;
    let params = reference.config().param_count() as f64;
    // 4-bit codes + scale overhead: between 4 and 6 bits per parameter.
    // (The LM head is counted once; the tied embedding stays FP.)
    let per_param = bits / params;
    assert!(
        (3.0..7.0).contains(&per_param),
        "weight bits per parameter {per_param}"
    );
}
