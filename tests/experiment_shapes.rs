//! Integration tests asserting the *shape* of every reproduced experiment
//! (who wins, by roughly what factor, where crossovers fall) — the
//! reproduction contract of DESIGN.md §4.

use lightmamba_repro::accel::baselines::TransformerAccelBaseline;
use lightmamba_repro::accel::gpu::GpuModel;
use lightmamba_repro::accel::platform::GpuDevice;
use lightmamba_repro::accel::sim::DecodeSimulator;
use lightmamba_repro::hadamard::FactoredHadamard;
use lightmamba_repro::model::synth::{synthetic_activations, OutlierPattern};
use lightmamba_repro::prelude::*;
use lightmamba_repro::quant::quantizer::{fake_quant, QuantScheme};
use lightmamba_repro::tensor::{stats, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Table II's mechanism: on scattered outliers, rotation beats RTN while
/// calibrated channel-wise scaling does not.
#[test]
fn table2_shape_rotation_beats_rtn_on_scattered_outliers() {
    let mut rng = StdRng::seed_from_u64(6);
    let channels = 1024usize;
    let acts = synthetic_activations(
        &mut rng,
        64,
        channels,
        OutlierPattern::Scattered {
            channels_per_token: 6,
            magnitude: 40.0,
        },
    );
    let scheme = QuantScheme::act_per_group(4, 128);
    let rtn = {
        let q = fake_quant(&acts, scheme).unwrap();
        stats::sse(acts.data(), q.data())
    };
    let h = FactoredHadamard::new(channels).unwrap();
    let mut rot = 0.0f32;
    for t in 0..64 {
        let mut row = acts.row(t).unwrap().to_vec();
        h.apply(&mut row);
        let rt = Tensor::from_vec(row.clone(), &[channels]).unwrap();
        let q = fake_quant(&rt, scheme).unwrap();
        rot += stats::sse(&row, q.data());
    }
    assert!(
        rot < 0.5 * rtn,
        "rotation error {rot} should be well below RTN {rtn}"
    );
}

/// Fig. 2's mechanism: rotation collapses kurtosis and peak-to-rms.
#[test]
fn fig2_shape_rotation_flattens_distribution() {
    let mut rng = StdRng::seed_from_u64(8);
    let channels = 2048usize;
    let acts = synthetic_activations(
        &mut rng,
        32,
        channels,
        OutlierPattern::Scattered {
            channels_per_token: 6,
            magnitude: 40.0,
        },
    );
    let h = FactoredHadamard::new(channels).unwrap();
    let before = stats::kurtosis(acts.data());
    let mut rotated = acts.clone();
    for t in 0..32 {
        let row = &mut rotated.data_mut()[t * channels..(t + 1) * channels];
        let mut v = row.to_vec();
        h.apply(&mut v);
        row.copy_from_slice(&v);
    }
    let after = stats::kurtosis(rotated.data());
    assert!(
        before > 30.0,
        "synthetic outliers should be heavy: {before}"
    );
    assert!(
        after < 6.0,
        "rotated activations should be near-gaussian: {after}"
    );
}

/// Table IV's headline: VCK190 numbers land near 7.21 / 3.61 tokens/s and
/// U280 near 93; FPGA energy efficiency beats both GPUs by a wide factor.
#[test]
fn table4_shape_throughput_and_efficiency() {
    let w4 = CoDesign::new(Target::Vck190W4A4, ModelPreset::B2_7).hardware_report();
    let w8 = CoDesign::new(Target::Vck190W8A8, ModelPreset::B2_7).hardware_report();
    let u280 = CoDesign::new(Target::U280W4A4, ModelPreset::B2_7).hardware_report();
    assert!(
        (5.5..9.0).contains(&w4.decode.tokens_per_s),
        "{}",
        w4.decode.tokens_per_s
    );
    assert!(
        (2.8..4.5).contains(&w8.decode.tokens_per_s),
        "{}",
        w8.decode.tokens_per_s
    );
    assert!(
        (65.0..125.0).contains(&u280.decode.tokens_per_s),
        "{}",
        u280.decode.tokens_per_s
    );

    let model = MambaConfig::preset(ModelPreset::B2_7);
    let gpu2070 = GpuModel::new(GpuDevice::rtx2070()).decode_report(&model);
    let gpu4090 = GpuModel::new(GpuDevice::rtx4090()).decode_report(&model);
    assert!(w4.power.tokens_per_joule > 3.0 * gpu2070.tokens_per_joule);
    assert!(w4.power.tokens_per_joule > 2.5 * gpu4090.tokens_per_joule);
}

/// Fig. 9a's shape: ours beats the RTX 2070 on average; Mamba curves are
/// flat while Transformer baselines decay with output length.
#[test]
fn fig9a_shape_flat_vs_decaying() {
    let lengths = [128usize, 1024, 4096, 8192];
    let model = MambaConfig::preset(ModelPreset::B2_7);
    let ours = DecodeSimulator::new(
        Target::U280W4A4.platform(),
        model.clone(),
        Target::U280W4A4.config(&model),
    )
    .throughput_vs_length(&lengths);
    let gpu = GpuModel::new(GpuDevice::rtx2070()).throughput_vs_length(&model, &lengths);
    let flight = TransformerAccelBaseline::flightllm().throughput_vs_length(&lengths);

    // Flat for Mamba.
    assert!((ours[0].1 - ours[3].1).abs() < 1e-9);
    // Decaying for the Transformer accelerator.
    assert!(flight[3].1 < 0.8 * flight[0].1);
    // Average speedup over the GPU in the paper's 1.43x regime.
    let avg: f64 = ours
        .iter()
        .zip(gpu.iter())
        .map(|(o, g)| o.1 / g.1)
        .sum::<f64>()
        / lengths.len() as f64;
    assert!((1.1..1.8).contains(&avg), "avg speedup {avg} vs paper 1.43");
}

/// Fig. 9b's shape: energy advantage over GPUs grows as models shrink.
#[test]
fn fig9b_shape_small_models_gain_more() {
    let gpu = GpuModel::new(GpuDevice::rtx2070());
    let mut advantages = Vec::new();
    for preset in [ModelPreset::M130, ModelPreset::M780, ModelPreset::B2_7] {
        let model = MambaConfig::preset(preset);
        let ours = CoDesign::with_config(Target::Vck190W4A4, model.clone())
            .hardware_report()
            .power
            .tokens_per_joule;
        let theirs = gpu.decode_report(&model).tokens_per_joule;
        advantages.push(ours / theirs);
    }
    assert!(
        advantages[0] > advantages[1] && advantages[1] > advantages[2],
        "advantage should grow toward small models: {advantages:?}"
    );
    // 2.7B advantage in the paper's 4.65–6.06x regime (we allow 3–12x).
    assert!((3.0..12.0).contains(&advantages[2]), "{advantages:?}");
}

/// Fig. 4b's conclusion: fusing the second norm scale before rotation
/// raises out_proj weight quantization error on a strong majority of layers.
#[test]
fn fig4b_shape_fusion_hurts() {
    use lightmamba_repro::quant::metrics::quant_error;
    use lightmamba_repro::quant::rotation::rotate_out_proj;
    use lightmamba_repro::tensor::rng::heavy_tailed;

    let mut rng = StdRng::seed_from_u64(4);
    let h = FactoredHadamard::new(192).unwrap().to_tensor();
    let q = lightmamba_repro::hadamard::RandomizedHadamard::new(96, &mut rng)
        .unwrap()
        .to_tensor();
    let scheme = QuantScheme::weight_per_group(4, 32);
    let mut worse = 0;
    let layers = 16;
    for _ in 0..layers {
        let std = 1.0 / (192f32).sqrt();
        let w = Tensor::from_fn(&[192, 96], |_| std * heavy_tailed(&mut rng, 0.002, 8.0));
        let gamma: Vec<f32> = (0..192)
            .map(|_| 1.0 + 0.15 * heavy_tailed(&mut rng, 0.02, 6.0).abs())
            .collect();
        let ro = quant_error(&rotate_out_proj(&w, None, &h, &q).unwrap(), scheme).unwrap();
        let fu = quant_error(&rotate_out_proj(&w, Some(&gamma), &h, &q).unwrap(), scheme).unwrap();
        if fu > ro {
            worse += 1;
        }
    }
    assert!(
        worse >= layers * 3 / 4,
        "fusion worse on only {worse}/{layers} layers"
    );
}
